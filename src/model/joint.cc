#include "model/joint.h"

#include <cassert>

namespace dadu::model {

const char *
jointTypeName(JointType t)
{
    switch (t) {
      case JointType::RevoluteX: return "revolute_x";
      case JointType::RevoluteY: return "revolute_y";
      case JointType::RevoluteZ: return "revolute_z";
      case JointType::PrismaticX: return "prismatic_x";
      case JointType::PrismaticY: return "prismatic_y";
      case JointType::PrismaticZ: return "prismatic_z";
      case JointType::Spherical: return "spherical";
      case JointType::Translation3: return "translation3";
      case JointType::Floating: return "floating";
    }
    return "unknown";
}

int
jointNq(JointType t)
{
    switch (t) {
      case JointType::Spherical: return 4;
      case JointType::Translation3: return 3;
      case JointType::Floating: return 7;
      default: return 1;
    }
}

int
jointNv(JointType t)
{
    switch (t) {
      case JointType::Spherical: return 3;
      case JointType::Translation3: return 3;
      case JointType::Floating: return 6;
      default: return 1;
    }
}

bool
isRevolute(JointType t)
{
    return t == JointType::RevoluteX || t == JointType::RevoluteY ||
           t == JointType::RevoluteZ;
}

bool
isPrismatic(JointType t)
{
    return t == JointType::PrismaticX || t == JointType::PrismaticY ||
           t == JointType::PrismaticZ;
}

MotionSubspace
MotionSubspace::forType(JointType t)
{
    MotionSubspace s;
    s.nv_ = jointNv(t);
    switch (t) {
      case JointType::RevoluteX:
        s.cols_[0] = Vec6::unit(0);
        break;
      case JointType::RevoluteY:
        s.cols_[0] = Vec6::unit(1);
        break;
      case JointType::RevoluteZ:
        s.cols_[0] = Vec6::unit(2);
        break;
      case JointType::PrismaticX:
        s.cols_[0] = Vec6::unit(3);
        break;
      case JointType::PrismaticY:
        s.cols_[0] = Vec6::unit(4);
        break;
      case JointType::PrismaticZ:
        s.cols_[0] = Vec6::unit(5);
        break;
      case JointType::Spherical:
        for (int i = 0; i < 3; ++i)
            s.cols_[i] = Vec6::unit(i);
        break;
      case JointType::Translation3:
        for (int i = 0; i < 3; ++i)
            s.cols_[i] = Vec6::unit(3 + i);
        break;
      case JointType::Floating:
        for (int i = 0; i < 6; ++i)
            s.cols_[i] = Vec6::unit(i);
        break;
    }
    return s;
}

SpatialTransform
jointTransform(JointType t, const VectorX &q)
{
    assert(static_cast<int>(q.size()) == jointNq(t));
    switch (t) {
      case JointType::RevoluteX:
        return SpatialTransform::rotation(linalg::rotX(q[0]));
      case JointType::RevoluteY:
        return SpatialTransform::rotation(linalg::rotY(q[0]));
      case JointType::RevoluteZ:
        return SpatialTransform::rotation(linalg::rotZ(q[0]));
      case JointType::PrismaticX:
        return SpatialTransform::translation(Vec3{q[0], 0, 0});
      case JointType::PrismaticY:
        return SpatialTransform::translation(Vec3{0, q[0], 0});
      case JointType::PrismaticZ:
        return SpatialTransform::translation(Vec3{0, 0, q[0]});
      case JointType::Spherical: {
        const Quaternion quat{q[0], q[1], q[2], q[3]};
        return SpatialTransform::rotation(quat.toRotation().transpose());
      }
      case JointType::Translation3:
        return SpatialTransform::translation(Vec3{q[0], q[1], q[2]});
      case JointType::Floating: {
        const Quaternion quat{q[3], q[4], q[5], q[6]};
        return SpatialTransform(quat.toRotation().transpose(),
                                Vec3{q[0], q[1], q[2]});
      }
    }
    return SpatialTransform::identity();
}

VectorX
jointIntegrate(JointType t, const VectorX &q, const VectorX &v)
{
    assert(static_cast<int>(q.size()) == jointNq(t));
    assert(static_cast<int>(v.size()) == jointNv(t));
    switch (t) {
      case JointType::Spherical: {
        const Quaternion quat{q[0], q[1], q[2], q[3]};
        const Quaternion nq = quat.integrated(Vec3{v[0], v[1], v[2]});
        return VectorX{nq.x, nq.y, nq.z, nq.w};
      }
      case JointType::Floating: {
        const Quaternion quat{q[3], q[4], q[5], q[6]};
        // Linear displacement is expressed in the body frame; map it
        // to the world frame with R before adding.
        const linalg::Mat3 r = quat.toRotation();
        const Vec3 dp = r * Vec3{v[3], v[4], v[5]};
        const Quaternion nq = quat.integrated(Vec3{v[0], v[1], v[2]});
        return VectorX{q[0] + dp[0], q[1] + dp[1], q[2] + dp[2],
                       nq.x, nq.y, nq.z, nq.w};
      }
      default: {
        VectorX r = q;
        for (std::size_t i = 0; i < v.size(); ++i)
            r[i] += v[i];
        return r;
      }
    }
}

VectorX
jointNeutral(JointType t)
{
    switch (t) {
      case JointType::Spherical:
        return VectorX{0, 0, 0, 1};
      case JointType::Translation3:
        return VectorX{0, 0, 0};
      case JointType::Floating:
        return VectorX{0, 0, 0, 0, 0, 0, 1};
      default:
        return VectorX{0};
    }
}

} // namespace dadu::model
