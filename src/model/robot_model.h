/**
 * @file
 * Kinematic-tree robot model (Section II of the paper).
 *
 * An open-chain robot is a topological tree of NB links, each
 * attached to its parent λ(i) by one joint. Link 0's parent is the
 * fixed world (λ = -1 here, the paper's λ = 0). Every link carries a
 * rigid-body inertia and a fixed tree transform X_T (the pose of the
 * joint frame in the parent link frame at q = 0); the full link
 * transform is iXλ = X_J(q_i) · X_T.
 *
 * The model also exposes the topology queries the paper's
 * Structure-Adaptive Pipelines are built from: subtree sets tree(i),
 * branch decomposition at the root, tree depth, and re-rooting
 * ("topology rotation", Fig. 11c).
 */

#ifndef DADU_MODEL_ROBOT_MODEL_H
#define DADU_MODEL_ROBOT_MODEL_H

#include <random>
#include <string>
#include <vector>

#include "linalg/matrixx.h"
#include "model/joint.h"
#include "spatial/inertia.h"
#include "spatial/transform.h"

namespace dadu::model {

using linalg::VectorX;
using spatial::SpatialInertia;
using spatial::SpatialTransform;

/** One link and the joint connecting it to its parent. */
struct Link
{
    std::string name;        ///< Human-readable link name.
    int parent = -1;         ///< Parent link index (λ), -1 = world.
    JointType joint = JointType::RevoluteZ; ///< Connecting joint type.
    SpatialTransform xtree;  ///< Fixed transform X_T (parent -> joint frame).
    SpatialInertia inertia;  ///< Rigid-body inertia in the link frame.
    int qIndex = 0;          ///< First configuration index.
    int vIndex = 0;          ///< First velocity/DOF index.
};

/** Kinematic tree with joint-space index bookkeeping. */
class RobotModel
{
  public:
    /** @param name model name used in reports. */
    explicit RobotModel(std::string name = "robot");

    /**
     * Append a link.
     *
     * @param name    link name.
     * @param parent  parent link index, or -1 to attach to the world.
     * @param joint   connecting joint type.
     * @param xtree   fixed transform from parent frame to joint frame.
     * @param inertia rigid-body inertia in the new link's frame.
     * @return index of the new link.
     */
    int addLink(const std::string &name, int parent, JointType joint,
                const SpatialTransform &xtree,
                const SpatialInertia &inertia);

    const std::string &name() const { return name_; }

    /** Number of links/joints (the paper's NB). */
    int nb() const { return static_cast<int>(links_.size()); }

    /** Configuration dimension (sum of joint nq). */
    int nq() const { return nq_; }

    /** Velocity dimension / total DOF (the paper's N). */
    int nv() const { return nv_; }

    const Link &link(int i) const { return links_[i]; }

    int parent(int i) const { return links_[i].parent; }

    /** Children of link @p i (world children for i == -1). */
    const std::vector<int> &children(int i) const;

    /** Motion subspace of joint @p i. */
    const MotionSubspace &subspace(int i) const { return subspaces_[i]; }

    /**
     * The paper's tree(i): indices of all links in the subtree rooted
     * at @p i, in topological (increasing-depth) order, including i.
     */
    std::vector<int> subtree(int i) const;

    /** True if @p a is an ancestor of (or equal to) @p d. */
    bool isAncestorOf(int a, int d) const;

    /** Depth of link @p i (root links have depth 1). */
    int depth(int i) const;

    /** Maximum link depth of the tree. */
    int maxDepth() const;

    /**
     * Branch decomposition: the root chain is the path from the root
     * until the first link with more than one child; every subtree
     * hanging off it is a branch. Used by the SAP topology compiler.
     */
    std::vector<std::vector<int>> branches() const;

    /** Gravity as a spatial acceleration of the base (a_0 in RNEA). */
    const linalg::Vec6 &gravity() const { return gravity_; }

    void setGravity(const linalg::Vec6 &g) { gravity_ = g; }

    /** Neutral configuration (identity quaternions, zeros). */
    VectorX neutralConfiguration() const;

    /**
     * Tangent-space integration q' = q ⊕ dv (dv of size nv). Used by
     * RK4 integration in the MPC workload and by the
     * finite-difference derivative checks.
     */
    VectorX integrate(const VectorX &q, const VectorX &dv) const;

    /**
     * integrate() writing into caller storage: @p out is resized
     * (reusing capacity), so repeated calls with the same model
     * perform no heap allocation. @p out must not alias @p q or
     * @p dv.
     */
    void integrateInto(const VectorX &q, const VectorX &dv,
                       VectorX &out) const;

    /**
     * Tangent-space difference b ⊖ a: the dv (size nv) with
     * integrate(a, dv) == b — quaternion log map on rotational
     * joints, so configuration errors of floating-base robots live
     * in the same tangent space as velocities and the analytical
     * derivatives. Inverse of integrate().
     */
    VectorX difference(const VectorX &a, const VectorX &b) const;

    /**
     * difference() writing into caller storage: @p out is resized
     * (reusing capacity), so repeated calls perform no heap
     * allocation. @p out must not alias @p a or @p b.
     */
    void differenceInto(const VectorX &a, const VectorX &b,
                        VectorX &out) const;

    /** Uniform random configuration (angles in [-π, π], etc.). */
    VectorX randomConfiguration(std::mt19937 &rng) const;

    /** Uniform random velocity/acceleration-sized vector in [-1, 1]. */
    VectorX randomVelocity(std::mt19937 &rng) const;

    /**
     * Joint transform for link @p i at configuration @p q (full
     * configuration vector): iXλ = X_J(q_i) · X_T.
     */
    SpatialTransform linkTransform(int i, const VectorX &q) const;

    /** Configuration segment of joint @p i from a full q vector. */
    VectorX jointConfig(int i, const VectorX &q) const;

    /** Velocity segment of joint @p i from a full v-sized vector. */
    VectorX jointVelocity(int i, const VectorX &v) const;

  private:
    std::string name_;
    std::vector<Link> links_;
    std::vector<MotionSubspace> subspaces_;
    std::vector<std::vector<int>> children_;
    std::vector<int> worldChildren_;
    int nq_ = 0;
    int nv_ = 0;
    linalg::Vec6 gravity_;
};

} // namespace dadu::model

#endif // DADU_MODEL_ROBOT_MODEL_H
