#include "perf/power_model.h"

#include "accel/op_count.h"

namespace dadu::perf {

namespace {

using accel::SubmoduleKind;

/** Fraction of the instance's lanes toggling for each function. */
double
activeFraction(FunctionType fn)
{
    // Lane share by submodule family: FB-RNEA ~12%, FB-∆ ~52%,
    // BF ~32%, schedule ~4% of total lanes (measured from the op
    // counts of the evaluation robots).
    switch (fn) {
      case FunctionType::ID: return 0.13;
      case FunctionType::M: return 0.30;
      case FunctionType::Minv: return 0.34;
      case FunctionType::FD: return 0.48;
      case FunctionType::DeltaID: return 0.66;
      case FunctionType::DeltaiFD: return 0.83;
      case FunctionType::DeltaFD: return 1.00;
    }
    return 1.0;
}

} // namespace

PowerEstimate
accelPower(const Accelerator &accel, FunctionType fn)
{
    PowerEstimate p;
    const auto res = accel.resources();
    // Calibration: iiwa ∆FD (all lanes active) -> 36.8 W; the
    // lightest function (ID) -> 6.2 W; ∆iFD -> 31.2 W (Section VI-C).
    constexpr double static_w = 3.2;
    constexpr double w_per_dsp_active = 0.0079;
    const double mhz_scale = accel.config().freq_mhz / 125.0;
    p.static_w = static_w;
    p.dynamic_w =
        res.dsp * activeFraction(fn) * w_per_dsp_active * mhz_scale;
    return p;
}

double
accelEnergyPerTaskUj(const Accelerator &accel, FunctionType fn)
{
    const auto est = accel.analytic(fn);
    const double task_time_us = 1.0 / est.throughput_mtasks;
    return accelPower(accel, fn).total() * task_time_us;
}

double
accelEdpPerTask(const Accelerator &accel, FunctionType fn)
{
    // Delay in the paper's EDP is the per-task service time of the
    // saturated pipeline (1/throughput), which is what the 13.2x
    // claim is built from (2.0x energy x 6.6x service time).
    const auto est = accel.analytic(fn);
    return accelEnergyPerTaskUj(accel, fn) / est.throughput_mtasks;
}

} // namespace dadu::perf
