#include "perf/resource_model.h"

#include <sstream>

namespace dadu::perf {

ResourceEstimate
robomorphicResources()
{
    ResourceEstimate r;
    r.dsp = accel::Xcvu9p::dsp / 2; // "at least half of the DSP"
    r.lut = static_cast<long>(accel::Xcvu9p::lut * 0.45);
    r.ff = static_cast<long>(accel::Xcvu9p::ff * 0.20);
    r.dsp_pct = 100.0 * r.dsp / accel::Xcvu9p::dsp;
    r.lut_pct = 100.0 * static_cast<double>(r.lut) / accel::Xcvu9p::lut;
    r.ff_pct = 100.0 * static_cast<double>(r.ff) / accel::Xcvu9p::ff;
    return r;
}

std::string
formatResources(const ResourceEstimate &r)
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << r.dsp_pct << "% DSP (" << r.dsp << "), "
       << r.lut_pct << "% LUT (" << r.lut << "), " << r.ff_pct
       << "% FF (" << r.ff << ")";
    return os.str();
}

} // namespace dadu::perf
