/**
 * @file
 * Power and energy model for the configured accelerator
 * (Section VI-C).
 *
 * Dynamic power scales with the number of DSP lanes actually
 * toggling for the running function; static power and fabric
 * overhead are fixed per configuration. Calibrated to the paper's
 * LBR iiwa numbers: 6.2 W (lightest function) to 36.8 W (heaviest),
 * 31.2 W for ∆iFD, against Robomorphic's 9.6 W — yielding the 2.0×
 * energy and 13.2× EDP advantages the paper reports.
 */

#ifndef DADU_PERF_POWER_MODEL_H
#define DADU_PERF_POWER_MODEL_H

#include "accel/accelerator.h"
#include "accel/function.h"

namespace dadu::perf {

using accel::Accelerator;
using accel::FunctionType;

/** Power breakdown in watts. */
struct PowerEstimate
{
    double static_w = 0.0;  ///< device static + clocking
    double dynamic_w = 0.0; ///< active datapath switching
    double total() const { return static_w + dynamic_w; }
};

/** Power for running @p fn on the configured accelerator. */
PowerEstimate accelPower(const Accelerator &accel, FunctionType fn);

/** Energy per task in microjoules. */
double accelEnergyPerTaskUj(const Accelerator &accel, FunctionType fn);

/** Energy-delay product per task (µJ·µs). */
double accelEdpPerTask(const Accelerator &accel, FunctionType fn);

} // namespace dadu::perf

#endif // DADU_PERF_POWER_MODEL_H
