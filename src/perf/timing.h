/**
 * @file
 * Measured host-CPU timing utilities.
 *
 * The paper measures Pinocchio with -O3 on real CPUs; here the
 * equivalent is our reference library measured on the build host.
 * These helpers time a callable the way the paper's methodology
 * does: N warm repetitions, wall-clock average per call.
 */

#ifndef DADU_PERF_TIMING_H
#define DADU_PERF_TIMING_H

#include <chrono>
#include <functional>

#include "accel/function.h"
#include "model/robot_model.h"

namespace dadu::perf {

using accel::FunctionType;
using model::RobotModel;

/**
 * Monotonic wall clock in microseconds — the one timing source for
 * every measured path (workload phases, CPU-backend batch stats,
 * bench harness rounds).
 */
inline double
nowUs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count() /
           1000.0;
}

/** Average wall-clock microseconds per call of @p fn over @p reps. */
double timeUs(const std::function<void()> &fn, int reps);

/**
 * Measured single-thread latency of the reference library for one
 * dynamics function on the host CPU (the paper's "latency" protocol:
 * many different tasks, single thread, averaged).
 */
double hostLatencyUs(const RobotModel &robot, FunctionType fn,
                     int tasks = 32, int reps = 20);

/**
 * Host-CPU throughput model in million tasks/s for @p threads
 * threads: measured single-thread rate scaled by a saturating
 * parallel-efficiency curve (Fig. 2b behaviour: dynamics is
 * memory-bound, so scaling flattens). On this container only one
 * core is available, so multi-thread numbers are a documented model
 * on top of the measured single-thread rate.
 */
double hostThroughputMtasks(const RobotModel &robot, FunctionType fn,
                            int threads);

/** The saturating thread-scaling factor used above. */
double threadScaling(int threads);

} // namespace dadu::perf

#endif // DADU_PERF_TIMING_H
