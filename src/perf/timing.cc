#include "perf/timing.h"

#include <random>
#include <vector>

#include "algorithms/aba.h"
#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/rnea.h"
#include "algorithms/rnea_derivatives.h"

namespace dadu::perf {

using linalg::VectorX;

double
timeUs(const std::function<void()> &fn, int reps)
{
    fn(); // warm-up
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        fn();
    const auto end = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count();
    return ns / reps / 1000.0;
}

double
hostLatencyUs(const RobotModel &robot, FunctionType fn, int tasks,
              int reps)
{
    std::mt19937 rng(99);
    std::vector<VectorX> qs, qds, us;
    for (int i = 0; i < tasks; ++i) {
        qs.push_back(robot.randomConfiguration(rng));
        qds.push_back(robot.randomVelocity(rng));
        us.push_back(robot.randomVelocity(rng));
    }
    volatile double sink = 0.0;
    auto loop = [&](auto &&body) {
        return timeUs(
                   [&] {
                       for (int i = 0; i < tasks; ++i)
                           body(i);
                   },
                   reps) /
               tasks;
    };
    switch (fn) {
      case FunctionType::ID:
        return loop([&](int i) {
            sink = algo::rnea(robot, qs[i], qds[i], us[i]).tau[0];
        });
      case FunctionType::FD:
        return loop([&](int i) {
            sink = algo::aba(robot, qs[i], qds[i], us[i])[0];
        });
      case FunctionType::M:
        return loop([&](int i) {
            sink = algo::crba(robot, qs[i])(0, 0);
        });
      case FunctionType::Minv:
        return loop([&](int i) {
            sink = algo::massMatrixInverse(robot, qs[i])(0, 0);
        });
      case FunctionType::DeltaID:
        return loop([&](int i) {
            sink = algo::rneaDerivatives(robot, qs[i], qds[i], us[i])
                       .dtau_dq(0, 0);
        });
      case FunctionType::DeltaFD:
        return loop([&](int i) {
            sink = algo::fdDerivatives(robot, qs[i], qds[i], us[i])
                       .dqdd_dq(0, 0);
        });
      case FunctionType::DeltaiFD: {
        // Precompute q̈ and M⁻¹ outside the timed region.
        std::vector<algo::FdDerivatives> pre;
        for (int i = 0; i < tasks; ++i)
            pre.push_back(
                algo::fdDerivatives(robot, qs[i], qds[i], us[i]));
        return loop([&](int i) {
            sink = algo::fdDerivativesGivenAccel(robot, qs[i], qds[i],
                                                 pre[i].qdd,
                                                 pre[i].minv)
                       .dqdd_dq(0, 0);
        });
      }
    }
    (void)sink;
    return 0.0;
}

double
threadScaling(int threads)
{
    // Saturating curve fit to Fig. 2b: near-linear to 4 threads,
    // flattening beyond 8 (memory-bound forward/backward sweeps).
    const double t = threads;
    return t / (1.0 + 0.09 * (t - 1.0) + 0.012 * (t - 1.0) * (t - 1.0));
}

double
hostThroughputMtasks(const RobotModel &robot, FunctionType fn,
                     int threads)
{
    const double lat = hostLatencyUs(robot, fn);
    return threadScaling(threads) / lat;
}

} // namespace dadu::perf
