#include "perf/baselines.h"

#include <algorithm>
#include <array>

namespace dadu::perf {

namespace {

/** Function index in the tables below. */
int
fnIndex(FunctionType fn)
{
    switch (fn) {
      case FunctionType::ID: return 0;
      case FunctionType::FD: return 1;
      case FunctionType::M: return 2;
      case FunctionType::Minv: return 3;
      case FunctionType::DeltaID: return 4;
      case FunctionType::DeltaFD: return 5;
      case FunctionType::DeltaiFD: return 4; // ≈ ∆ID-class workload
    }
    return 0;
}

/**
 * AGX Orin CPU (Pinocchio, -O3, single thread) latency per function
 * in µs, read off Fig. 15 a/c/e. All other platform models are
 * expressed relative to this anchor, which keeps the cross-platform
 * ratios at the paper's reported averages.
 */
constexpr std::array<std::array<double, 6>, 3> kAgxCpuLatencyUs{{
    // ID    FD     M    Minv   dID    dFD
    {2.5, 6.0, 2.0, 4.5, 5.5, 12.0},   // iiwa
    {3.5, 8.0, 3.0, 6.5, 8.0, 16.0},   // hyq
    {9.0, 22.0, 8.0, 18.0, 25.0, 50.0} // atlas
}};

int
robotIndex(EvalRobot r)
{
    return static_cast<int>(r);
}

} // namespace

const char *
platformName(Platform p)
{
    switch (p) {
      case Platform::AgxCpu: return "AGX CPU (model)";
      case Platform::AgxGpu: return "AGX GPU (model)";
      case Platform::I9Cpu: return "i9-13900HX (model)";
      case Platform::Rtx4090m: return "RTX 4090M (model)";
      case Platform::CpuOf33: return "i7-7700 4t [33] (model)";
      case Platform::GpuOf33: return "RTX 2080 [33] (model)";
      case Platform::Robomorphic: return "Robomorphic [12] (model)";
    }
    return "?";
}

const char *
evalRobotName(EvalRobot r)
{
    switch (r) {
      case EvalRobot::Iiwa: return "iiwa";
      case EvalRobot::Hyq: return "HyQ";
      case EvalRobot::Atlas: return "Atlas";
    }
    return "?";
}

double
paperLatencyUs(Platform p, EvalRobot r, FunctionType fn)
{
    const double agx = kAgxCpuLatencyUs[robotIndex(r)][fnIndex(fn)];
    switch (p) {
      case Platform::AgxCpu:
        return agx;
      case Platform::I9Cpu:
        // i9 runs ~3.2x faster per core (Fig. 15: Dadu vs i9 latency
        // averages 0.82x while vs AGX it averages 0.29x).
        return agx / 3.2;
      case Platform::CpuOf33:
        return agx / 1.8; // desktop i7-7700, single task
      case Platform::GpuOf33:
        return 12.0; // GPU kernel launch dominated
      case Platform::Rtx4090m:
      case Platform::AgxGpu:
        // GRiD single-task latency is launch-dominated; the paper
        // reports throughput only.
        return p == Platform::Rtx4090m ? 8.0 : 25.0;
      case Platform::Robomorphic:
        // 0.61 µs for iiwa ∆iFD (Section VI-A); other entries scale
        // with the AGX profile. Only ∆iFD is implemented.
        return (fn == FunctionType::DeltaiFD ||
                fn == FunctionType::DeltaID)
                   ? 0.61 * agx / kAgxCpuLatencyUs[0][4]
                   : 0.0;
    }
    return 0.0;
}

namespace {

/** True for the GPU platforms, which are batch-floor-bound. */
bool
isGpu(Platform p)
{
    return p == Platform::AgxGpu || p == Platform::Rtx4090m ||
           p == Platform::GpuOf33;
}

/**
 * GPU minimum batch time in µs (kernel launch + transfer floor): the
 * flat region of Fig. 17 before SM saturation.
 */
double
gpuBatchFloorUs(Platform p)
{
    switch (p) {
      case Platform::Rtx4090m: return 35.0;
      case Platform::AgxGpu: return 160.0;
      case Platform::GpuOf33: return 30.0;
      default: return 0.0;
    }
}

/**
 * Saturated throughput in tasks/µs at very large batches — the slope
 * of the linear region of Fig. 17.
 */
double
saturatedThroughput(Platform p, EvalRobot r, FunctionType fn)
{
    const double agx = kAgxCpuLatencyUs[robotIndex(r)][fnIndex(fn)];
    switch (p) {
      case Platform::AgxCpu:
        // 12 cores at ~45% parallel efficiency (Fig. 2b saturation).
        return 5.4 / agx;
      case Platform::I9Cpu:
        // 32 threads, but memory-bound scaling (Section I).
        return 8.5 / agx;
      case Platform::AgxGpu:
        if (fn == FunctionType::M)
            return 0.0; // GRiD has no mass-matrix kernel
        return 25.0 / agx;
      case Platform::Rtx4090m:
        if (fn == FunctionType::M)
            return 0.0;
        return 300.0 / agx;
      case Platform::CpuOf33:
        return 7.0 / agx;
      case Platform::GpuOf33:
        return 40.0 / agx;
      case Platform::Robomorphic:
        // Two coarse pipeline stages: II ≈ 0.46 µs for iiwa ∆iFD.
        return (fn == FunctionType::DeltaiFD ||
                fn == FunctionType::DeltaID)
                   ? 1.0 / (0.46 * agx / kAgxCpuLatencyUs[0][4])
                   : 0.0;
    }
    return 0.0;
}

} // namespace

double
batchedTimeUs(Platform p, EvalRobot r, FunctionType fn, int batch)
{
    const double thr = saturatedThroughput(p, r, fn);
    if (thr <= 0.0)
        return 0.0;
    const double floor_us =
        isGpu(p) ? gpuBatchFloorUs(p) : paperLatencyUs(p, r, fn);
    // Latency/launch-bound until the platform's parallelism
    // saturates, then throughput-bound (the flat-then-linear shape
    // of Fig. 17).
    return std::max(floor_us, batch / thr);
}

double
paperThroughputMtasks(Platform p, EvalRobot r, FunctionType fn)
{
    // The paper's throughput protocol: 256-task batches. GPUs are
    // still launch-bound at that size (which is why Fig. 17 shows
    // them winning only past batch ≈ 512).
    const double t = batchedTimeUs(p, r, fn, 256);
    if (t <= 0.0)
        return 0.0;
    return 256.0 / t;
}

double
platformPowerW(Platform p)
{
    switch (p) {
      case Platform::AgxCpu:
      case Platform::AgxGpu: return 60.0;
      case Platform::I9Cpu: return 140.0;
      case Platform::Rtx4090m: return 175.0;
      case Platform::CpuOf33: return 65.0;
      case Platform::GpuOf33: return 215.0;
      case Platform::Robomorphic: return 9.6;
    }
    return 0.0;
}

} // namespace dadu::perf
