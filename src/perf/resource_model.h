/**
 * @file
 * Comparative resource reporting (Section VI-C).
 *
 * The per-configuration resource numbers come from
 * Accelerator::resources(); this module adds the Robomorphic
 * comparison point and formatting helpers for the bench binaries.
 */

#ifndef DADU_PERF_RESOURCE_MODEL_H
#define DADU_PERF_RESOURCE_MODEL_H

#include <string>

#include "accel/accelerator.h"

namespace dadu::perf {

using accel::Accelerator;
using accel::ResourceEstimate;

/**
 * Robomorphic's published iiwa ∆iFD design point on the same chip:
 * "at least half of the DSP" (Section VI-C) at 56 MHz.
 */
ResourceEstimate robomorphicResources();

/** Formatted utilization line ("62% DSP, 54% LUT, 17% FF"). */
std::string formatResources(const ResourceEstimate &r);

} // namespace dadu::perf

#endif // DADU_PERF_RESOURCE_MODEL_H
