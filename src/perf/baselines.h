/**
 * @file
 * Baseline performance models for the paper's comparison platforms.
 *
 * The evaluation (Section VI) compares Dadu-RBD against:
 *  - Pinocchio [13] on the AGX Orin CPU and i9-13900HX,
 *  - GRiD [34] on the AGX Orin GPU and RTX 4090M,
 *  - the CPU/GPU/FPGA implementations of [33] (Robomorphic [12]).
 *
 * None of that hardware exists in this environment, so each platform
 * is an analytical model calibrated to the numbers the paper reports
 * (figures 15-17), while the *host* CPU baseline is measured for real
 * from our reference library (see timing.h). Every model is clearly
 * a model: the bench binaries label these columns "(paper-reported
 * model)". The batch-scaling law for GPUs (flat latency until SM
 * saturation, then linear growth) reproduces the shape of Fig. 17.
 */

#ifndef DADU_PERF_BASELINES_H
#define DADU_PERF_BASELINES_H

#include <string>

#include "accel/function.h"

namespace dadu::perf {

using accel::FunctionType;

/** Baseline platforms of the paper's evaluation. */
enum class Platform
{
    AgxCpu,      ///< Jetson AGX Orin CPU, Pinocchio
    AgxGpu,      ///< Jetson AGX Orin GPU, GRiD
    I9Cpu,       ///< i9-13900HX, Pinocchio
    Rtx4090m,    ///< RTX 4090 Mobile, GRiD
    CpuOf33,     ///< i7-7700 4-thread baseline of [33]
    GpuOf33,     ///< RTX 2080 baseline of [33]
    Robomorphic, ///< FPGA of [12]/[33] on the XVCU9P
};

const char *platformName(Platform p);

/** Robots the paper evaluates (Fig. 15). */
enum class EvalRobot
{
    Iiwa,
    Hyq,
    Atlas,
};

const char *evalRobotName(EvalRobot r);

/**
 * Single-task latency in microseconds as the paper reports
 * (Fig. 15 a/c/e bars; [33] for the batch-oriented platforms).
 * Returns 0 when the platform does not implement the function
 * (e.g. GRiD has no mass-matrix kernel).
 */
double paperLatencyUs(Platform p, EvalRobot r, FunctionType fn);

/**
 * Saturated throughput in million tasks per second, as reported for
 * 256-task batches (Fig. 15 b/d/f).
 */
double paperThroughputMtasks(Platform p, EvalRobot r, FunctionType fn);

/**
 * Batched execution time in microseconds for @p batch tasks: flat
 * (latency-bound) until the platform's parallelism saturates, then
 * linear in batch size. Reproduces Figs. 16-17.
 */
double batchedTimeUs(Platform p, EvalRobot r, FunctionType fn,
                     int batch);

/** Platform power in watts (Section VI power comparisons). */
double platformPowerW(Platform p);

} // namespace dadu::perf

#endif // DADU_PERF_BASELINES_H
