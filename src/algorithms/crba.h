/**
 * @file
 * Composite Rigid Body Algorithm: the joint-space mass matrix M(q).
 *
 * Software baseline for the paper's M function (Table I); the
 * accelerator computes M through the merged MMinvGen pipeline
 * instead (Algorithm 2), which is validated against this routine.
 */

#ifndef DADU_ALGORITHMS_CRBA_H
#define DADU_ALGORITHMS_CRBA_H

#include "linalg/matrixx.h"
#include "model/robot_model.h"

namespace dadu::algo {

using linalg::MatrixX;
using linalg::VectorX;
using model::RobotModel;

/** Mass matrix M(q), symmetric positive-definite, size nv x nv. */
MatrixX crba(const RobotModel &robot, const VectorX &q);

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_CRBA_H
