/**
 * @file
 * Composite Rigid Body Algorithm: the joint-space mass matrix M(q).
 *
 * Software baseline for the paper's M function (Table I); the
 * accelerator computes M through the merged MMinvGen pipeline
 * instead (Algorithm 2), which is validated against this routine.
 */

#ifndef DADU_ALGORITHMS_CRBA_H
#define DADU_ALGORITHMS_CRBA_H

#include "linalg/matrixx.h"
#include "model/robot_model.h"

namespace dadu::algo {

using linalg::MatrixX;
using linalg::VectorX;
using model::RobotModel;

struct DynamicsWorkspace;

/** Mass matrix M(q), symmetric positive-definite, size nv x nv. */
MatrixX crba(const RobotModel &robot, const VectorX &q);

/**
 * Workspace CRBA: per-link temporaries live in @p ws and @p m is
 * resized in place (reusing capacity), so the steady state performs
 * zero heap allocations.
 */
void crba(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
          MatrixX &m);

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_CRBA_H
