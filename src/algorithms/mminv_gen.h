/**
 * @file
 * MMinvGen: the paper's merged mass-matrix / inverse-mass-matrix
 * generator (Algorithm 2).
 *
 * Combines the CRBA with the analytical joint-space-inertia inverse
 * (Carpentier's simplified ABA [47]) into a single backward sweep
 * plus, for the inverse, a forward completion sweep — avoiding a
 * whole forward loop relative to running the two classic algorithms
 * back to back (Section IV-B). The outM/outMinv flags select the
 * output, mirroring the accelerator's micro-instruction modes. The
 * two modes share the backward dataflow but keep different I^A
 * contents (composite vs articulated inertia), so exactly one flag
 * may be set per call — the accelerator likewise runs them as
 * separate function invocations.
 */

#ifndef DADU_ALGORITHMS_MMINV_GEN_H
#define DADU_ALGORITHMS_MMINV_GEN_H

#include "linalg/matrixx.h"
#include "model/robot_model.h"

namespace dadu::algo {

using linalg::MatrixX;
using linalg::VectorX;
using model::RobotModel;

/**
 * Run Algorithm 2.
 *
 * @param robot    the robot model.
 * @param q        configuration (size nq).
 * @param out_m    produce the mass matrix M (CRBA dataflow).
 * @param out_minv produce M⁻¹ (analytical-inverse dataflow).
 * @return the requested symmetric nv x nv matrix.
 *
 * Exactly one of @p out_m / @p out_minv must be true.
 */
MatrixX mminvGen(const RobotModel &robot, const VectorX &q, bool out_m,
                 bool out_minv);

struct DynamicsWorkspace;

/**
 * Workspace MMinvGen: the F/P force workspaces, articulated
 * inertias, joint-space blocks and subtree column lists all live in
 * @p ws (the column lists are topology caches built once per model),
 * and @p out is resized in place — zero heap allocations in the
 * steady state.
 */
void mminvGen(const RobotModel &robot, DynamicsWorkspace &ws,
              const VectorX &q, bool out_m, bool out_minv, MatrixX &out,
              bool reuse_transforms = false);

/** Workspace wrapper: M(q) via MMinvGen. */
inline void
massMatrix(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
           MatrixX &m)
{
    mminvGen(robot, ws, q, true, false, m);
}

/** Workspace wrapper: M⁻¹(q) via MMinvGen. */
inline void
massMatrixInverse(const RobotModel &robot, DynamicsWorkspace &ws,
                  const VectorX &q, MatrixX &minv)
{
    mminvGen(robot, ws, q, false, true, minv);
}

/** Convenience wrapper: M(q) via MMinvGen. */
inline MatrixX
massMatrix(const RobotModel &robot, const VectorX &q)
{
    return mminvGen(robot, q, true, false);
}

/** Convenience wrapper: M⁻¹(q) via MMinvGen. */
inline MatrixX
massMatrixInverse(const RobotModel &robot, const VectorX &q)
{
    return mminvGen(robot, q, false, true);
}

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_MMINV_GEN_H
