#include "algorithms/dynamics.h"

#include "algorithms/crba.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/workspace.h"
#include "linalg/factorize.h"

namespace dadu::algo {

VectorX
forwardDynamics(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &tau,
                const std::vector<Vec6> *fext)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    VectorX qdd;
    forwardDynamics(robot, ws, q, qd, tau, qdd, fext);
    return qdd;
}

void
forwardDynamics(const RobotModel &robot, DynamicsWorkspace &ws,
                const VectorX &q, const VectorX &qd, const VectorX &tau,
                VectorX &qdd, const std::vector<Vec6> *fext)
{
    ws.computeTransforms(robot, q); // shared by steps ① and ②
    biasForce(robot, ws, q, qd, ws.bias, fext, true);   // step ①
    mminvGen(robot, ws, q, false, true,
             ws.minv_tmp, true);                        // step ②
    ws.tmp_nv.setDifference(tau, ws.bias);              // step ③
    ws.minv_tmp.multiplyInto(ws.tmp_nv, qdd);
}

VectorX
forwardDynamicsCholesky(const RobotModel &robot, const VectorX &q,
                        const VectorX &qd, const VectorX &tau,
                        const std::vector<Vec6> *fext)
{
    const VectorX c = biasForce(robot, q, qd, fext);
    const MatrixX m = crba(robot, q);
    const linalg::Ldlt ldlt(m);
    return ldlt.solve(tau - c);
}

FdDerivatives
fdDerivatives(const RobotModel &robot, const VectorX &q, const VectorX &qd,
              const VectorX &tau, const std::vector<Vec6> *fext)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    FdDerivatives out;
    fdDerivatives(robot, ws, q, qd, tau, out, fext);
    return out;
}

// Step ⑥ (∂q̈/∂u = -M⁻¹ ∂τ/∂u), optionally restricted to the live
// columns of @p plan. Live columns accumulate and negate through the
// same per-column arithmetic as the dense product (bitwise equal);
// dead columns stay exactly 0.0 from the resize.
static void
minvProductStep(const MatrixX &minv, const RneaDerivatives &did,
                FdDerivatives &out, const ColumnPlan *plan)
{
    if (plan != nullptr && !plan->dense()) {
        const int *cols = plan->cols().data();
        const auto ncols = plan->cols().size();
        minv.multiplyColsInto(did.dtau_dq, out.dqdd_dq, cols, ncols);
        out.dqdd_dq.negateCols(cols, ncols);
        minv.multiplyColsInto(did.dtau_dqd, out.dqdd_dqd, cols, ncols);
        out.dqdd_dqd.negateCols(cols, ncols);
        return;
    }
    minv.multiplyInto(did.dtau_dq, out.dqdd_dq);
    out.dqdd_dq.negate();
    minv.multiplyInto(did.dtau_dqd, out.dqdd_dqd);
    out.dqdd_dqd.negate();
}

void
fdDerivatives(const RobotModel &robot, DynamicsWorkspace &ws,
              const VectorX &q, const VectorX &qd, const VectorX &tau,
              FdDerivatives &out, const std::vector<Vec6> *fext,
              const ColumnPlan *plan)
{
    ws.computeTransforms(robot, q); // shared by steps ①, ② and ⑤
    biasForce(robot, ws, q, qd, ws.bias, fext, true);   // step ①
    mminvGen(robot, ws, q, false, true, out.minv, true); // step ②
    ws.tmp_nv.setDifference(tau, ws.bias);              // step ③
    out.minv.multiplyInto(ws.tmp_nv, out.qdd);
    rneaDerivatives(robot, ws, q, qd, out.qdd,
                    ws.did, fext, true, plan);          // steps ④⑤
    minvProductStep(out.minv, ws.did, out, plan);       // step ⑥
}

FdDerivatives
fdDerivativesGivenAccel(const RobotModel &robot, const VectorX &q,
                        const VectorX &qd, const VectorX &qdd,
                        const MatrixX &minv, const std::vector<Vec6> *fext)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    FdDerivatives out;
    fdDerivativesGivenAccel(robot, ws, q, qd, qdd, minv, out, fext);
    return out;
}

void
fdDerivativesGivenAccel(const RobotModel &robot, DynamicsWorkspace &ws,
                        const VectorX &q, const VectorX &qd,
                        const VectorX &qdd, const MatrixX &minv,
                        FdDerivatives &out, const std::vector<Vec6> *fext,
                        const ColumnPlan *plan)
{
    ws.ensure(robot);
    out.minv = minv;
    out.qdd = qdd;
    rneaDerivatives(robot, ws, q, qd, qdd, ws.did, fext,
                    false, plan);                         // steps ④⑤
    minvProductStep(out.minv, ws.did, out, plan);         // step ⑥
}

} // namespace dadu::algo
