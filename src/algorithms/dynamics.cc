#include "algorithms/dynamics.h"

#include "algorithms/crba.h"
#include "algorithms/mminv_gen.h"
#include "linalg/factorize.h"

namespace dadu::algo {

VectorX
forwardDynamics(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &tau,
                const std::vector<Vec6> *fext)
{
    const VectorX c = biasForce(robot, q, qd, fext); // step ①
    const MatrixX minv = massMatrixInverse(robot, q); // step ②
    return minv * (tau - c);                          // step ③
}

VectorX
forwardDynamicsCholesky(const RobotModel &robot, const VectorX &q,
                        const VectorX &qd, const VectorX &tau,
                        const std::vector<Vec6> *fext)
{
    const VectorX c = biasForce(robot, q, qd, fext);
    const MatrixX m = crba(robot, q);
    const linalg::Ldlt ldlt(m);
    return ldlt.solve(tau - c);
}

FdDerivatives
fdDerivatives(const RobotModel &robot, const VectorX &q, const VectorX &qd,
              const VectorX &tau, const std::vector<Vec6> *fext)
{
    FdDerivatives out;
    const VectorX c = biasForce(robot, q, qd, fext);  // step ①
    out.minv = massMatrixInverse(robot, q);           // step ②
    out.qdd = out.minv * (tau - c);                   // step ③
    const RneaDerivatives did =
        rneaDerivatives(robot, q, qd, out.qdd, fext); // steps ④⑤
    out.dqdd_dq = -(out.minv * did.dtau_dq);          // step ⑥
    out.dqdd_dqd = -(out.minv * did.dtau_dqd);
    return out;
}

FdDerivatives
fdDerivativesGivenAccel(const RobotModel &robot, const VectorX &q,
                        const VectorX &qd, const VectorX &qdd,
                        const MatrixX &minv, const std::vector<Vec6> *fext)
{
    FdDerivatives out;
    out.minv = minv;
    out.qdd = qdd;
    const RneaDerivatives did = rneaDerivatives(robot, q, qd, qdd, fext);
    out.dqdd_dq = -(minv * did.dtau_dq);
    out.dqdd_dqd = -(minv * did.dtau_dqd);
    return out;
}

} // namespace dadu::algo
