#include "algorithms/aba.h"

#include <vector>

#include "algorithms/workspace.h"
#include "linalg/factorize.h"
#include "spatial/cross.h"
#include "spatial/inertia.h"
#include "spatial/transform.h"

namespace dadu::algo {

using linalg::Mat66;
using spatial::crossForce;
using spatial::crossMotion;
using spatial::SpatialTransform;

VectorX
aba(const RobotModel &robot, const VectorX &q, const VectorX &qd,
    const VectorX &tau, const std::vector<Vec6> *fext)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    VectorX qdd;
    aba(robot, ws, q, qd, tau, qdd, fext);
    return qdd;
}

void
aba(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
    const VectorX &qd, const VectorX &tau, VectorX &qdd,
    const std::vector<Vec6> *fext)
{
    ws.ensure(robot);
    const int nb = robot.nb();
    qdd.resize(robot.nv());

    // Pass 1: velocities and bias terms.
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        ws.xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const Vec6 vj = s.applySegment(qd, robot.link(i).vIndex);
        const Vec6 vparent = lam == -1 ? Vec6::zero() : ws.v[lam];
        ws.v[i] = ws.xup[i].applyMotion(vparent) + vj;
        ws.c[i] = crossMotion(ws.v[i], vj);
        ws.ia[i] = robot.link(i).inertia.toMatrix();
        ws.pa[i] = crossForce(ws.v[i], robot.link(i).inertia.apply(ws.v[i]));
        if (fext)
            ws.pa[i] -= (*fext)[i];
    }

    // Pass 2: articulated-body inertias, backward.
    for (int i = nb - 1; i >= 0; --i) {
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        Vec6 *ucols = &ws.ucols[static_cast<std::size_t>(i) * 6];
        double *dinv = &ws.dinv[static_cast<std::size_t>(i) * 36];
        double *uvec = &ws.uvec[static_cast<std::size_t>(i) * 6];

        // U = I^A S and D = S^T U: one-hot subspace columns reduce
        // to column/element reads of I^A (bitwise identical).
        for (int k = 0; k < ni; ++k) {
            const int ax = s.unitAxis(k);
            if (ax >= 0) {
                for (int a = 0; a < 6; ++a)
                    ucols[k][a] = ws.ia[i](a, ax);
            } else {
                ucols[k] = ws.ia[i] * s.col(k);
            }
        }

        double d[36];
        for (int r = 0; r < ni; ++r) {
            const int ax = s.unitAxis(r);
            for (int k = 0; k < ni; ++k)
                d[r * ni + k] =
                    ax >= 0 ? ucols[k][ax] : s.col(r).dot(ucols[k]);
        }
        if (ni == 1) {
            // 1-DOF fast path; bitwise identical to the LDLT route.
            dinv[0] = 1.0 / d[0];
        } else {
            ws.small_ldlt.compute(d, ni);
            ws.small_ldlt.inverseInto(dinv);
        }

        for (int k = 0; k < ni; ++k) {
            const int ax = s.unitAxis(k);
            uvec[k] = tau[vi + k] -
                      (ax >= 0 ? ws.pa[i][ax] : s.col(k).dot(ws.pa[i]));
        }

        const int lam = robot.parent(i);
        if (lam == -1)
            continue;

        // Ia = IA - U D^-1 U^T ; pa' = pa + Ia c + U D^-1 u.
        Mat66 ia_articulated = ws.ia[i];
        for (int r = 0; r < ni; ++r) {
            for (int k = 0; k < ni; ++k) {
                const double dk = dinv[r * ni + k];
                if (dk == 0.0)
                    continue;
                for (int a = 0; a < 6; ++a)
                    for (int b = 0; b < 6; ++b)
                        ia_articulated(a, b) -=
                            dk * ucols[r][a] * ucols[k][b];
            }
        }
        Vec6 pa_articulated = ws.pa[i] + ia_articulated * ws.c[i];
        for (int r = 0; r < ni; ++r) {
            double coef = 0.0;
            for (int k = 0; k < ni; ++k)
                coef += dinv[r * ni + k] * uvec[k];
            pa_articulated += ucols[r] * coef;
        }

        // Transform into the parent frame: X^T Ia X and X^T pa.
        const Mat66 xm = ws.xup[i].toMatrix();
        ws.ia[lam] += xm.transpose() * ia_articulated * xm;
        ws.pa[lam] += ws.xup[i].applyTransposeForce(pa_articulated);
    }

    // Pass 3: accelerations, forward.
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        const Vec6 *ucols = &ws.ucols[static_cast<std::size_t>(i) * 6];
        const double *dinv = &ws.dinv[static_cast<std::size_t>(i) * 36];
        const double *uvec = &ws.uvec[static_cast<std::size_t>(i) * 6];

        const Vec6 aparent = lam == -1 ? robot.gravity() : ws.a[lam];
        const Vec6 aprime = ws.xup[i].applyMotion(aparent) + ws.c[i];

        double rhs[6];
        for (int k = 0; k < ni; ++k)
            rhs[k] = uvec[k] - ucols[k].dot(aprime);
        ws.a[i] = aprime;
        for (int r = 0; r < ni; ++r) {
            double qdd_r = 0.0;
            for (int k = 0; k < ni; ++k)
                qdd_r += dinv[r * ni + k] * rhs[k];
            qdd[vi + r] = qdd_r;
            ws.a[i] += s.col(r) * qdd_r;
        }
    }
}

} // namespace dadu::algo
