#include "algorithms/aba.h"

#include <vector>

#include "linalg/factorize.h"
#include "spatial/cross.h"
#include "spatial/inertia.h"
#include "spatial/transform.h"

namespace dadu::algo {

using linalg::Mat66;
using linalg::MatrixX;
using spatial::crossForce;
using spatial::crossMotion;
using spatial::SpatialTransform;

namespace {

/** Inverse of a small SPD matrix (joint-space D_i, at most 6x6). */
MatrixX
invertSmallSpd(const MatrixX &d)
{
    return linalg::Ldlt(d).inverse();
}

} // namespace

VectorX
aba(const RobotModel &robot, const VectorX &q, const VectorX &qd,
    const VectorX &tau, const std::vector<Vec6> *fext)
{
    const int nb = robot.nb();
    VectorX qdd(robot.nv());

    std::vector<SpatialTransform> xup(nb);
    std::vector<Vec6> v(nb), c(nb), pa(nb);
    std::vector<Mat66> ia(nb);
    // Per-joint U (6 x ni columns), D^-1 (ni x ni) and u (ni).
    std::vector<std::vector<Vec6>> ucols(nb);
    std::vector<MatrixX> dinv(nb);
    std::vector<VectorX> uvec(nb);

    // Pass 1: velocities and bias terms.
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const Vec6 vj = s.apply(robot.jointVelocity(i, qd));
        const Vec6 vparent = lam == -1 ? Vec6::zero() : v[lam];
        v[i] = xup[i].applyMotion(vparent) + vj;
        c[i] = crossMotion(v[i], vj);
        ia[i] = robot.link(i).inertia.toMatrix();
        pa[i] = crossForce(v[i], robot.link(i).inertia.apply(v[i]));
        if (fext)
            pa[i] -= (*fext)[i];
    }

    // Pass 2: articulated-body inertias, backward.
    for (int i = nb - 1; i >= 0; --i) {
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        ucols[i].resize(ni);
        for (int k = 0; k < ni; ++k)
            ucols[i][k] = ia[i] * s.col(k);

        MatrixX d(ni, ni);
        for (int r = 0; r < ni; ++r)
            for (int k = 0; k < ni; ++k)
                d(r, k) = s.col(r).dot(ucols[i][k]);
        dinv[i] = invertSmallSpd(d);

        uvec[i].resize(ni);
        for (int k = 0; k < ni; ++k)
            uvec[i][k] = tau[vi + k] - s.col(k).dot(pa[i]);

        const int lam = robot.parent(i);
        if (lam == -1)
            continue;

        // Ia = IA - U D^-1 U^T ; pa' = pa + Ia c + U D^-1 u.
        Mat66 ia_articulated = ia[i];
        for (int r = 0; r < ni; ++r) {
            for (int k = 0; k < ni; ++k) {
                const double dk = dinv[i](r, k);
                if (dk == 0.0)
                    continue;
                for (int a = 0; a < 6; ++a)
                    for (int b = 0; b < 6; ++b)
                        ia_articulated(a, b) -=
                            dk * ucols[i][r][a] * ucols[i][k][b];
            }
        }
        Vec6 pa_articulated = pa[i] + ia_articulated * c[i];
        for (int r = 0; r < ni; ++r) {
            double coef = 0.0;
            for (int k = 0; k < ni; ++k)
                coef += dinv[i](r, k) * uvec[i][k];
            pa_articulated += ucols[i][r] * coef;
        }

        // Transform into the parent frame: X^T Ia X and X^T pa.
        const Mat66 xm = xup[i].toMatrix();
        ia[lam] += xm.transpose() * ia_articulated * xm;
        pa[lam] += xup[i].applyTransposeForce(pa_articulated);
    }

    // Pass 3: accelerations, forward.
    std::vector<Vec6> a(nb);
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        const Vec6 aparent = lam == -1 ? robot.gravity() : a[lam];
        const Vec6 aprime = xup[i].applyMotion(aparent) + c[i];

        VectorX rhs(ni);
        for (int k = 0; k < ni; ++k)
            rhs[k] = uvec[i][k] - ucols[i][k].dot(aprime);
        a[i] = aprime;
        for (int r = 0; r < ni; ++r) {
            double qdd_r = 0.0;
            for (int k = 0; k < ni; ++k)
                qdd_r += dinv[i](r, k) * rhs[k];
            qdd[vi + r] = qdd_r;
            a[i] += s.col(r) * qdd_r;
        }
    }
    return qdd;
}

} // namespace dadu::algo
