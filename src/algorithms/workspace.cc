#include "algorithms/workspace.h"

namespace dadu::algo {

DynamicsWorkspace &
threadLocalWorkspace()
{
    thread_local DynamicsWorkspace ws;
    return ws;
}

void
DynamicsWorkspace::topologySignature(const RobotModel &robot,
                                     std::vector<int> &out)
{
    out.clear();
    out.push_back(robot.nq());
    out.push_back(robot.nv());
    for (int i = 0; i < robot.nb(); ++i) {
        out.push_back(robot.parent(i));
        out.push_back(robot.link(i).vIndex);
        out.push_back(robot.subspace(i).nv());
    }
}

void
DynamicsWorkspace::computeTransforms(const RobotModel &robot,
                                     const VectorX &q)
{
    ensure(robot);
    for (int i = 0; i < nb; ++i)
        xup[i] = robot.linkTransform(i, q);
}

void
DynamicsWorkspace::ensure(const RobotModel &robot)
{
    // Fast path: already sized for an identical topology. The
    // signature compare is O(nb) integer reads and allocation-free
    // once the scratch has capacity.
    topologySignature(robot, sig_scratch_);
    if (sig_scratch_ == sig_)
        return;
    sig_ = sig_scratch_;

    // The lane-pack arenas are sized for the old topology: drop them
    // so the SoA kernels rebuild on next use (mirrors the realloc of
    // every scalar buffer below).
    for (auto &slot : soa_arenas)
        slot.reset();

    nb = robot.nb();
    nq = robot.nq();
    nv = robot.nv();

    xup.assign(nb, spatial::SpatialTransform());
    v.assign(nb, Vec6::zero());
    c.assign(nb, Vec6::zero());
    a.assign(nb, Vec6::zero());
    pa.assign(nb, Vec6::zero());
    f.assign(nb, Vec6::zero());
    ia.assign(nb, linalg::Mat66::zero());
    ic.assign(nb, spatial::ArticulatedInertia());

    ucols.assign(static_cast<std::size_t>(nb) * 6, Vec6::zero());
    dinv.assign(static_cast<std::size_t>(nb) * 36, 0.0);
    uvec.assign(static_cast<std::size_t>(nb) * 6, 0.0);

    fmat.assign(nb, MatrixX(nv, 6));
    pmat.assign(nb, MatrixX(nv, 6));

    tree_cols.assign(nb, {});
    for (int i = 0; i < nb; ++i) {
        for (int j : robot.subtree(i)) {
            const int vj = robot.link(j).vIndex;
            for (int k = 0; k < robot.subspace(j).nv(); ++k)
                tree_cols[i].push_back(vj + k);
        }
    }
    active_cols.assign(nb, {});
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        if (lam != -1)
            active_cols[i] = active_cols[lam];
        const int vi = robot.link(i).vIndex;
        for (int k = 0; k < robot.subspace(i).nv(); ++k)
            active_cols[i].push_back(vi + k);
    }
    // rel_cols = active_cols ∪ tree_cols. Both lists are ascending
    // and tree_cols[i] starts with link i's own DOFs (also the tail
    // of active_cols[i]), so the union is a simple concatenation.
    rel_cols.assign(nb, {});
    for (int i = 0; i < nb; ++i) {
        const int ni = robot.subspace(i).nv();
        rel_cols[i] = active_cols[i];
        rel_cols[i].insert(rel_cols[i].end(),
                           tree_cols[i].begin() + ni, tree_cols[i].end());
    }

    dcells.assign(static_cast<std::size_t>(nb) * nv, DerivCell{});

    zero_nv.resize(nv);
    bias.resize(nv);
    tmp_nv.resize(nv);
    tangent.resize(nv);
    q_plus.resize(nq);
    q_minus.resize(nq);
    vel_plus.resize(nv);
    vel_minus.resize(nv);
    qdd_plus.resize(nv);
    qdd_minus.resize(nv);
    minv_tmp.resize(nv, nv);
    for (RneaResult *r : {&rnea_res, &rnea_plus, &rnea_minus}) {
        r->tau.resize(nv);
        r->v.assign(nb, Vec6::zero());
        r->a.assign(nb, Vec6::zero());
        r->f.assign(nb, Vec6::zero());
    }
    did.dtau_dq.resize(nv, nv);
    did.dtau_dqd.resize(nv, nv);

    // The aligned allocator hands out 64-byte blocks; keep it honest
    // in debug builds (the SoA kernels rely on it for aligned pack
    // loads).
    assert(linalg::isAligned(xup.data()));
    assert(linalg::isAligned(v.data()) && linalg::isAligned(f.data()));
    assert(linalg::isAligned(ia.data()) && linalg::isAligned(ic.data()));
    assert(linalg::isAligned(ucols.data()));
    assert(linalg::isAligned(dinv.data()) && linalg::isAligned(uvec.data()));
    assert(linalg::isAligned(dcells.data()));
}

} // namespace dadu::algo
