/**
 * @file
 * Column-sparsity gating for the derivative pipeline.
 *
 * ∆FD/∆ID/∆iFD Jacobian columns are arithmetically independent (each
 * tangent-space column has its own fused ∆RNEA chain), so a client
 * that knows which coordinates moved since its last linearization can
 * request only those columns. A `ColumnPlan` is the resolved form of
 * a request's (mode, seed set): the sorted live-column list every
 * gated sweep iterates, plus the liveness bitmap the per-column loops
 * test.
 *
 * Three modes, mirroring lat-dynamic's dynamic channel pruning:
 *  - `None`:     dense — every column computed (today's behavior).
 *  - `Simple`:   exactly the seed set.
 *  - `Adaptive`: the seed set with small gaps (≤ kAdaptiveMaxGap)
 *                between live columns filled in, coalescing nearby
 *                columns into contiguous runs that preserve the
 *                per-column fused-chain locality of the SoA sweeps.
 *                Filler columns are computed with their true values,
 *                so every column the plan marks live is bitwise equal
 *                to the dense result.
 *
 * Contract: live columns of a gated sweep are bitwise identical to
 * the dense sweep (scalar and SoA); dead columns are exactly 0.0.
 */

#ifndef DADU_ALGORITHMS_COL_GATING_H
#define DADU_ALGORITHMS_COL_GATING_H

#include <cstdint>
#include <vector>

namespace dadu::algo {

/** Gating policy carried by a DynamicsRequest. */
enum class GatingMode : std::uint8_t
{
    None,     ///< dense: seed set ignored, all columns computed
    Simple,   ///< exactly the seed columns
    Adaptive, ///< seed columns, gaps ≤ kAdaptiveMaxGap coalesced
};

/** Human-readable mode name (bench/report labels). */
const char *gatingModeName(GatingMode mode);

/**
 * Largest run gap the adaptive coalescer fills: two live columns
 * separated by at most this many dead ones are merged into one run.
 */
inline constexpr int kAdaptiveMaxGap = 2;

/**
 * Submit-time seed-set validation: every index in [0, nv), no
 * duplicates. Allocation-free (O(k²), k = seed size — small by
 * construction since gating only pays off for sparse seeds). An
 * empty seed is valid and means dense.
 */
bool seedValid(const std::vector<int> &seed, int nv);

/**
 * Live-column count of the resolved plan without building one —
 * what the scheduler/admission layers price. Allocation-free.
 * Assumes a valid seed; `None` or an empty seed prices dense (nv).
 */
int gatedLiveCount(GatingMode mode, const std::vector<int> &seed, int nv);

/**
 * Resolved column plan: the liveness bitmap and sorted live-column
 * list a gated derivative sweep iterates. Grow-only internals — one
 * plan re-resolved per batch allocates nothing in the steady state.
 */
class ColumnPlan
{
  public:
    /**
     * Resolve (mode, seed) against a tangent dimension. Returns
     * false (and leaves the plan dense) on an invalid seed:
     * out-of-range or duplicate indices. The seed need not be
     * sorted; an empty seed or mode None resolves dense. A seed
     * covering every column also resolves dense.
     */
    bool resolve(GatingMode mode, const std::vector<int> &seed, int nv);

    /** True when every column is live (no gating). */
    bool dense() const { return dense_; }

    /** Tangent dimension the plan was resolved against. */
    int nv() const { return nv_; }

    /** Number of live columns (== nv() when dense). */
    int liveCount() const
    {
        return dense_ ? nv_ : static_cast<int>(cols_.size());
    }

    /** Number of contiguous live runs (1 when dense). */
    int runCount() const { return runs_; }

    /**
     * Sorted live columns. Only meaningful when !dense(); gated
     * sweeps iterate this instead of [0, nv).
     */
    const std::vector<int> &cols() const { return cols_; }

    /** Liveness test for one column. */
    bool isLive(int col) const
    {
        return dense_ || live_[static_cast<std::size_t>(col)] != 0;
    }

  private:
    int nv_ = 0;
    int runs_ = 1;
    bool dense_ = true;
    std::vector<int> cols_;          ///< sorted live columns
    std::vector<unsigned char> live_; ///< per-column liveness bytes
};

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_COL_GATING_H
