/**
 * @file
 * BatchedDynamics: multi-point dynamics evaluation across a thread
 * pool with one DynamicsWorkspace per worker chunk.
 *
 * The MPC application layer (Fig. 2/13 of the paper) evaluates
 * forward dynamics, its derivatives and the mass-matrix inverse at
 * ~100 independent horizon points per iteration — the
 * parallelizable dark-blue share of Fig. 2c. This engine is the CPU
 * analogue of the accelerator's batch pipelines: N independent
 * (q, q̇, τ) sample points are fanned out over app::ThreadPool in
 * contiguous chunks, each chunk evaluated through its own reusable
 * workspace, so the steady-state hot loop performs zero heap
 * allocations (dispatch included: the pool's runIndexed path has no
 * std::function or queue-node allocation, and all outputs are
 * engine-owned storage reused across calls).
 *
 * Within a chunk, points are packed into SIMD lane packs of width W
 * (4, 8 or 16; see src/algorithms/soa/) and evaluated by the
 * lane-parallel SoA kernels, with the ragged remainder falling back
 * to the scalar workspace kernels. The SoA kernels mirror the scalar
 * algorithms expression by expression, so results stay bitwise
 * identical to the single-point reference regardless of lane width
 * or thread count: chunking and packing only change which thread and
 * which register lane (not in which order, per point) the arithmetic
 * runs.
 */

#ifndef DADU_ALGORITHMS_BATCHED_H
#define DADU_ALGORITHMS_BATCHED_H

#include <atomic>
#include <memory>
#include <vector>

#include "algorithms/dynamics.h"
#include "algorithms/workspace.h"
#include "app/thread_pool.h"
#include "linalg/matrixx.h"
#include "model/robot_model.h"

namespace dadu::algo {

/**
 * Batched evaluation of independent dynamics sample points.
 *
 * Not thread-safe: one batch call at a time per engine (the batch
 * methods stage the inputs in engine state and the pool's indexed
 * dispatch is non-reentrant). Use one engine per producer thread,
 * or serialize calls externally.
 */
class BatchedDynamics
{
  public:
    /**
     * @param robot   model every batch entry is evaluated against.
     * @param threads total parallelism (>= 1), clamped to the
     *                hardware thread count (oversubscribing a
     *                CPU-bound batch never helps). The engine spawns
     *                threads - 1 pool workers; the calling thread
     *                participates in every batch, so exactly
     *                threadCount() chunks run concurrently, each
     *                with its own workspace.
     */
    BatchedDynamics(const RobotModel &robot, int threads);

    /**
     * Share an existing worker pool instead of owning one: several
     * engines over one host (e.g. CpuBatchedBackend clones serving
     * DynamicsServer lanes) then fan out over ONE set of workers —
     * concurrent dispatches serialize on the pool's bulk gate rather
     * than oversubscribing the cores with per-engine worker sets.
     * Each engine still owns its workspaces, so sharing the pool
     * never shares mutable numeric state.
     */
    BatchedDynamics(const RobotModel &robot,
                    std::shared_ptr<app::ThreadPool> pool);

    /** The worker pool (shared across engines cloned for one host). */
    const std::shared_ptr<app::ThreadPool> &pool() const { return pool_; }

    /** Total parallelism (pool workers + the calling thread). */
    int threadCount() const { return pool_->threadCount() + 1; }

    /** Number of per-chunk workspaces (== threadCount()). */
    int workspaceCount() const
    {
        return static_cast<int>(workspaces_.size());
    }

    /**
     * Forward dynamics q̈ = FD(q, q̇, τ) at every sample point.
     * Input vectors must have equal length N; returns the engine's
     * output array (valid until the next batch call, reused across
     * calls). Only the first N entries are meaningful — the array
     * is grow-only so a smaller batch after a larger one does not
     * free and reallocate per-point storage.
     */
    const std::vector<VectorX> &
    batchForwardDynamics(const std::vector<VectorX> &q,
                         const std::vector<VectorX> &qd,
                         const std::vector<VectorX> &tau);

    /**
     * Span overload: @p n sample points read from raw arrays, so
     * callers staging inputs in grow-only storage (the runtime's CPU
     * backend) can batch fewer points than their staging capacity.
     */
    const std::vector<VectorX> &
    batchForwardDynamics(const VectorX *q, const VectorX *qd,
                         const VectorX *tau, int n);

    /**
     * ∆FD (q̈, ∂q̈/∂q, ∂q̈/∂q̇, M⁻¹) at every sample point.
     *
     * @param plan optional column gating shared by the whole batch
     *             (must stay valid for the duration of the call):
     *             live columns of ∂q̈/∂u are bitwise identical to the
     *             dense batch, dead columns exactly 0.0, on both the
     *             SoA and the scalar-remainder path. Null = dense.
     */
    const std::vector<FdDerivatives> &
    batchFdDerivatives(const std::vector<VectorX> &q,
                       const std::vector<VectorX> &qd,
                       const std::vector<VectorX> &tau,
                       const ColumnPlan *plan = nullptr);

    /** Span overload of batchFdDerivatives. */
    const std::vector<FdDerivatives> &
    batchFdDerivatives(const VectorX *q, const VectorX *qd,
                       const VectorX *tau, int n,
                       const ColumnPlan *plan = nullptr);

    /**
     * ∆iFD at every sample point: steps ④⑤⑥ of ∆FD with q̈ and M⁻¹
     * supplied per point (@p minv is an array of @p n pointers that
     * must stay valid for the call), mirroring the scalar
     * fdDerivativesGivenAccel. Because the dense ①②③ prefix is
     * skipped, a gated batch's cost scales with the live-column
     * count alone — this is the fast path for derivative refreshes
     * that reuse q̈/M⁻¹ held from an earlier dense ∆FD evaluation.
     * Gating semantics match batchFdDerivatives.
     */
    const std::vector<FdDerivatives> &
    batchFdDerivativesGivenAccel(const VectorX *q, const VectorX *qd,
                                 const VectorX *qdd,
                                 const linalg::MatrixX *const *minv,
                                 int n, const ColumnPlan *plan = nullptr);

    /** M⁻¹(q) at every sample point. */
    const std::vector<linalg::MatrixX> &
    batchMinv(const std::vector<VectorX> &q);

    /** Span overload of batchMinv. */
    const std::vector<linalg::MatrixX> &batchMinv(const VectorX *q, int n);

    /**
     * Select the SIMD lane width: 4, 8 or 16 routes full packs
     * through the SoA kernels (remainder scalar); 1 forces the pure
     * scalar path. The default is soa::defaultLaneWidth() (the
     * DADU_LANE_WIDTH environment override, else 8). Unsupported
     * widths are ignored. Outputs are bitwise invariant under this
     * choice. Not thread-safe against a concurrent batch call.
     */
    void setLaneWidth(int w);

    /** Current SIMD lane width (1 = scalar path). */
    int laneWidth() const { return lane_width_; }

  private:
    enum class Mode
    {
        Fd,
        FdDerivatives,
        FdGivenAccel,
        Minv,
    };

    static void runChunk(void *ctx, int chunk);
    void dispatch(Mode mode, const VectorX *q, const VectorX *qd,
                  const VectorX *tau, int n,
                  const ColumnPlan *plan = nullptr,
                  const linalg::MatrixX *const *minv = nullptr);

    const RobotModel &robot_;
    std::shared_ptr<app::ThreadPool> pool_;
    std::vector<DynamicsWorkspace> workspaces_;

    // Current batch (valid during dispatch).
    std::atomic<bool> in_dispatch_{false}; ///< misuse guard (debug)
    Mode mode_ = Mode::Fd;
    int n_ = 0;
    int lane_width_; ///< SIMD pack width (1 = scalar), set in ctor.
    const VectorX *in_q_ = nullptr;
    const VectorX *in_qd_ = nullptr;
    const VectorX *in_tau_ = nullptr;    ///< τ (∆FD) or q̈ (∆iFD)
    const ColumnPlan *in_plan_ = nullptr; ///< ∆FD/∆iFD column gating.
    const linalg::MatrixX *const *in_minv_ = nullptr; ///< ∆iFD M⁻¹ inputs.

    // Engine-owned outputs, reused across calls.
    std::vector<VectorX> qdd_out_;
    std::vector<FdDerivatives> fd_out_;
    std::vector<linalg::MatrixX> minv_out_;
};

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_BATCHED_H
