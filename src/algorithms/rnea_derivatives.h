/**
 * @file
 * ∆RNEA: analytical first-order derivatives of inverse dynamics,
 * ∂τ/∂q and ∂τ/∂q̇ (Carpentier-Mansard [13], in the dataflow form of
 * the paper's Fig. 7).
 *
 * The derivatives are propagated as incremental column blocks: the
 * Jacobians ∂v_i, ∂a_i, ∂f_i are 6 x N matrices whose only nonzero
 * columns belong to joints on the path from the root to link i —
 * exactly the "Incremental Calculation" property (Section IV-A4)
 * that makes deeper ∆RNEA submodules more expensive in hardware.
 *
 * Derivatives with respect to q are tangent-space (local-frame)
 * derivatives, consistent with RobotModel::integrate; for
 * single-DOF joints they coincide with plain partial derivatives.
 */

#ifndef DADU_ALGORITHMS_RNEA_DERIVATIVES_H
#define DADU_ALGORITHMS_RNEA_DERIVATIVES_H

#include <vector>

#include "algorithms/col_gating.h"
#include "linalg/matrixx.h"
#include "linalg/vec.h"
#include "model/robot_model.h"

namespace dadu::algo {

using linalg::MatrixX;
using linalg::Vec6;
using linalg::VectorX;
using model::RobotModel;

/** ∂τ/∂u for u = [q; q̇] (each nv x nv). */
struct RneaDerivatives
{
    MatrixX dtau_dq;  ///< ∂τ/∂q  (nv x nv).
    MatrixX dtau_dqd; ///< ∂τ/∂q̇ (nv x nv).
};

/**
 * Analytical derivatives of τ = ID(q, q̇, q̈, f_ext) with respect to
 * q and q̇ (∂τ/∂q̈ is simply M(q) and is not recomputed here).
 *
 * @param fext optional per-link external forces (link frames),
 *             treated as constants.
 */
RneaDerivatives rneaDerivatives(const RobotModel &robot, const VectorX &q,
                                const VectorX &qd, const VectorX &qdd,
                                const std::vector<Vec6> *fext = nullptr);

struct DynamicsWorkspace;

/**
 * Workspace ∆RNEA: the six 6 x nv column-Jacobian arenas (the
 * dominant allocations of the seed implementation), link states and
 * the per-link active-column lists all live in @p ws; @p out is
 * resized in place. Zero heap allocations in the steady state.
 *
 * @param plan optional column gating: when non-null and not dense,
 *             only live columns are propagated and written (they are
 *             bitwise identical to the dense sweep; dead columns of
 *             @p out are exactly 0.0). Null means dense.
 */
void rneaDerivatives(const RobotModel &robot, DynamicsWorkspace &ws,
                     const VectorX &q, const VectorX &qd,
                     const VectorX &qdd, RneaDerivatives &out,
                     const std::vector<Vec6> *fext = nullptr,
                     bool reuse_transforms = false,
                     const ColumnPlan *plan = nullptr);

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_RNEA_DERIVATIVES_H
