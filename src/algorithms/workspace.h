/**
 * @file
 * DynamicsWorkspace: a reusable per-thread arena for the reference
 * rigid-body algorithms.
 *
 * The seed implementations heap-allocated a dozen std::vector /
 * MatrixX temporaries on every call into aba(), rnea(), crba(),
 * mminvGen() and rneaDerivatives(). At MPC rates (~100 horizon
 * points x 4 RK4 stages per iteration, Fig. 2/13 of the paper) the
 * CPU baseline was dominated by allocator traffic rather than FLOPs.
 *
 * A DynamicsWorkspace owns every per-link temporary those algorithms
 * need — transforms, link states, articulated inertias, the
 * per-joint U/D⁻¹/u blocks, the ∆RNEA column-Jacobian arenas, the
 * MMinvGen force workspaces, and joint-space scratch vectors — sized
 * once from a RobotModel by ensure() and reused across calls. The
 * workspace-taking overloads declared in each algorithm header write
 * into caller-provided outputs and perform zero heap allocations in
 * the steady state (after the first call at a given model size).
 *
 * Workspaces are not thread-safe: use one workspace per thread (the
 * BatchedDynamics engine owns one per worker chunk).
 */

#ifndef DADU_ALGORITHMS_WORKSPACE_H
#define DADU_ALGORITHMS_WORKSPACE_H

#include <array>
#include <memory>
#include <vector>

#include "algorithms/rnea.h"
#include "algorithms/rnea_derivatives.h"
#include "linalg/aligned.h"
#include "linalg/factorize.h"
#include "linalg/mat.h"
#include "linalg/matrixx.h"
#include "linalg/vec.h"
#include "model/robot_model.h"
#include "spatial/inertia.h"
#include "spatial/transform.h"

namespace dadu::algo {

using linalg::MatrixX;
using linalg::Vec6;
using linalg::VectorX;
using model::RobotModel;

/**
 * Type-erased base of the lane-pack arenas in src/algorithms/soa/.
 * DynamicsWorkspace carries one slot per supported lane width so the
 * SoA kernels reuse grow-once pack storage alongside the scalar
 * arenas; ensure() drops the slots whenever the topology changes, so
 * a live arena always matches the workspace's model.
 */
struct SoaArenaBase
{
    virtual ~SoaArenaBase() = default;
};

/** Reusable arena for all per-call dynamics temporaries. */
struct DynamicsWorkspace
{
    DynamicsWorkspace() = default;

    explicit DynamicsWorkspace(const RobotModel &robot) { ensure(robot); }

    /**
     * Size the arena for @p robot. A no-op (and allocation-free) when
     * the workspace is already sized for a model with identical
     * topology; otherwise every buffer is (re)allocated and the
     * topology caches are rebuilt.
     */
    void ensure(const RobotModel &robot);

    /**
     * Fill xup with the link transforms iXλ(q). Composite routines
     * (∆FD) call this once and pass reuse_transforms = true to the
     * individual sweeps, which share the same transforms instead of
     * re-evaluating the joint trigonometry three times per point.
     */
    void computeTransforms(const RobotModel &robot, const VectorX &q);

    /** Dimensions the arena is currently sized for. */
    int nb = 0;
    int nq = 0;
    int nv = 0;

    // ----- per-link sweep state (ABA / RNEA / CRBA / MMinvGen) -----
    // All POD per-link arenas use the 64-byte (cache line) aligned
    // allocator: required by the SoA lane kernels' pack layout and
    // harmless for the scalar sweeps. ensure() asserts the alignment
    // in debug builds.
    linalg::aligned_vector<spatial::SpatialTransform> xup; ///< iXλ per link.
    linalg::aligned_vector<Vec6> v;                        ///< velocities.
    linalg::aligned_vector<Vec6> c;                        ///< bias terms.
    linalg::aligned_vector<Vec6> a;                        ///< accelerations.
    linalg::aligned_vector<Vec6> pa;                       ///< bias forces.
    linalg::aligned_vector<Vec6> f;                        ///< forces.
    linalg::aligned_vector<linalg::Mat66> ia;              ///< I^A per link.
    linalg::aligned_vector<spatial::ArticulatedInertia> ic; ///< I^C (CRBA).

    // ----- per-joint small blocks, flat with fixed strides -----
    /** U columns: entry [i*6 + k] is I^A_i S_i e_k, k < nv(i). */
    linalg::aligned_vector<Vec6> ucols;
    /** D⁻¹ blocks: rows [i*36 ..] hold the ni x ni inverse, stride ni. */
    linalg::aligned_vector<double> dinv;
    /** u vectors: entry [i*6 + k]. */
    linalg::aligned_vector<double> uvec;
    /** Fixed-capacity LDLT used for every joint-space D_i factor. */
    linalg::SmallLdlt small_ldlt;

    // ----- MMinvGen force / propagation workspaces -----
    // Stored transposed (nv x 6) so each spatial column F[:, j] is
    // six contiguous doubles — the sweeps only ever touch whole
    // columns.
    std::vector<MatrixX> fmat; ///< F_i^T, nv x 6 per link.
    std::vector<MatrixX> pmat; ///< P_i^T, nv x 6 per link (Minv sweep).

    // ----- topology caches (depend only on the model) -----
    /** DOF columns spanned by each subtree, increasing order. */
    std::vector<std::vector<int>> tree_cols;
    /** Root-path DOF columns of each link (∆RNEA active columns). */
    std::vector<std::vector<int>> active_cols;
    /**
     * Related DOF columns of each link: ancestors + self +
     * descendants (active_cols ∪ tree_cols), increasing order. The
     * only columns of ∂f_i/∂x that can be nonzero — the ∆RNEA
     * backward sweep iterates these instead of all nv (the
     * branch-induced sparsity of Fig. 5 / Section V-C4).
     */
    std::vector<std::vector<int>> rel_cols;

    /**
     * One ∆RNEA column-Jacobian cell (Fig. 7b): column `col` of
     * link i's six incremental Jacobians, interleaved so the
     * forward and backward sweeps touch one contiguous block per
     * (link, column) instead of six scattered arenas.
     */
    struct DerivCell
    {
        Vec6 dv_dq, dv_dqd;
        Vec6 da_dq, da_dqd;
        Vec6 df_dq, df_dqd;
    };

    /** ∆RNEA cells, nb * nv entries, cell (i, col) at [i*nv + col]. */
    linalg::aligned_vector<DerivCell> dcells;

    /**
     * Lane-pack arenas, one slot per supported SoA width (4/8/16),
     * created lazily by the soa:: kernels on first use at that width
     * and reused (grow-once) afterwards. Reset by ensure() on any
     * topology change. Owning a unique_ptr makes the workspace
     * move-only, which every existing user already satisfies.
     */
    std::array<std::unique_ptr<SoaArenaBase>, 3> soa_arenas;

    // ----- joint-space scratch -----
    VectorX zero_nv;    ///< Constant zero vector of size nv.
    VectorX bias;       ///< C(q, q̇) in composite routines.
    VectorX tmp_nv;     ///< τ - C and similar.
    VectorX tangent;    ///< Finite-difference tangent step.
    VectorX q_plus, q_minus;     ///< Perturbed configurations.
    VectorX vel_plus, vel_minus; ///< Perturbed velocities.
    VectorX qdd_plus, qdd_minus; ///< Finite-difference accelerations.
    MatrixX minv_tmp;   ///< M⁻¹ scratch for forwardDynamics.
    RneaResult rnea_res, rnea_plus, rnea_minus; ///< RNEA outputs.
    RneaDerivatives did; ///< ∆RNEA scratch (∆FD steps ④⑤).

  private:
    /** Topology signature: (parent, vIndex, nv) per link + dims. */
    std::vector<int> sig_;
    std::vector<int> sig_scratch_;

    static void topologySignature(const RobotModel &robot,
                                  std::vector<int> &out);
};

/**
 * The calling thread's shared workspace, used by every legacy
 * (allocating-signature) wrapper so a thread keeps exactly one
 * arena no matter how many entry points it touches. ensure() adapts
 * it when the model changes.
 */
DynamicsWorkspace &threadLocalWorkspace();

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_WORKSPACE_H
