/**
 * @file
 * Recursive Newton-Euler Algorithm (inverse dynamics).
 *
 * Implements Algorithm 1 of the paper: τ = ID(q, q̇, q̈, f_ext),
 * also returning the intermediate link states [v, a, f] that the
 * accelerator's dataflow forwards to the ∆RNEA pipeline (step ④ of
 * Fig. 9a feeds step ⑤).
 */

#ifndef DADU_ALGORITHMS_RNEA_H
#define DADU_ALGORITHMS_RNEA_H

#include <vector>

#include "linalg/matrixx.h"
#include "linalg/vec.h"
#include "model/robot_model.h"

namespace dadu::algo {

using linalg::Vec6;
using linalg::VectorX;
using model::RobotModel;

/** Outputs of the RNEA: joint torques plus per-link states. */
struct RneaResult
{
    VectorX tau;             ///< Joint torques (size nv).
    std::vector<Vec6> v;     ///< Link spatial velocities (per link).
    std::vector<Vec6> a;     ///< Link spatial accelerations (per link).
    std::vector<Vec6> f;     ///< Link spatial forces after the backward
                             ///< accumulation (per link).
};

struct DynamicsWorkspace;

/**
 * Inverse dynamics τ = ID(q, q̇, q̈, f_ext).
 *
 * @param robot the robot model.
 * @param q     configuration (size nq).
 * @param qd    joint velocities (size nv).
 * @param qdd   joint accelerations (size nv).
 * @param fext  optional per-link external forces, expressed in each
 *              link's own frame (entry i applies to link i); pass
 *              nullptr for none.
 */
RneaResult rnea(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &qdd,
                const std::vector<Vec6> *fext = nullptr);

/**
 * Workspace RNEA: link transforms come from @p ws and the result is
 * written into @p res (resized reusing capacity), so the steady
 * state performs zero heap allocations. @p res may be a workspace
 * member (e.g. ws.rnea_res) or caller storage; it must not alias
 * the inputs. Pass reuse_transforms = true when ws.xup already holds
 * the transforms for @p q (ws.computeTransforms) to skip the joint
 * trigonometry.
 */
void rnea(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
          const VectorX &qd, const VectorX &qdd, RneaResult &res,
          const std::vector<Vec6> *fext = nullptr,
          bool reuse_transforms = false, bool qdd_is_zero = false);

/**
 * Workspace bias force: C(q, q̇, f_ext) written into @p tau_out
 * without heap allocation in the steady state.
 */
void biasForce(const RobotModel &robot, DynamicsWorkspace &ws,
               const VectorX &q, const VectorX &qd, VectorX &tau_out,
               const std::vector<Vec6> *fext = nullptr,
               bool reuse_transforms = false);

/**
 * Generalized bias force C(q, q̇, f_ext) = ID(q, q̇, 0, f_ext):
 * Coriolis, centrifugal, gravity and external forces (step ① of the
 * paper's FD decomposition).
 */
VectorX biasForce(const RobotModel &robot, const VectorX &q,
                  const VectorX &qd,
                  const std::vector<Vec6> *fext = nullptr);

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_RNEA_H
