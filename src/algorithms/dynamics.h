/**
 * @file
 * Composite dynamics functions built from the six computation steps
 * of the paper's Fig. 9a:
 *
 *   ① C    = RNEA(q, q̇, 0, f_ext)
 *   ② M⁻¹  = MMinvGen(q, outMinv)
 *   ③ q̈    = M⁻¹ (τ - C)                       (FD)
 *   ④ v,a,f = RNEA(q, q̇, q̈, f_ext)
 *   ⑤ ∂uτ  = ∆RNEA(q, q̇, v, a, f)
 *   ⑥ ∂u q̈ = -M⁻¹ ∂uτ                          (∆FD)
 *
 * ID, FD, Minv, ∆ID, ∆iFD and ∆FD are subsets of these steps —
 * the relationship (Eqs. 2 and 3) the accelerator exploits to reuse
 * one set of pipelines for every function in Table I.
 */

#ifndef DADU_ALGORITHMS_DYNAMICS_H
#define DADU_ALGORITHMS_DYNAMICS_H

#include <vector>

#include "algorithms/rnea.h"
#include "algorithms/rnea_derivatives.h"
#include "linalg/matrixx.h"
#include "model/robot_model.h"

namespace dadu::algo {

/**
 * Forward dynamics via the paper's route: q̈ = M⁻¹ (τ - C) with M⁻¹
 * from MMinvGen (steps ①②③).
 */
VectorX forwardDynamics(const RobotModel &robot, const VectorX &q,
                        const VectorX &qd, const VectorX &tau,
                        const std::vector<Vec6> *fext = nullptr);

/**
 * Forward dynamics via Cholesky back-substitution on M (the
 * alternative Section III-A discusses: never forms M⁻¹ explicitly).
 */
VectorX forwardDynamicsCholesky(const RobotModel &robot, const VectorX &q,
                                const VectorX &qd, const VectorX &tau,
                                const std::vector<Vec6> *fext = nullptr);

/** ∂q̈/∂u result (u = [q; q̇]); optionally exposes M⁻¹. */
struct FdDerivatives
{
    VectorX qdd;        ///< Forward-dynamics result used internally.
    MatrixX dqdd_dq;    ///< ∂q̈/∂q  (nv x nv).
    MatrixX dqdd_dqd;   ///< ∂q̈/∂q̇ (nv x nv).
    MatrixX minv;       ///< M⁻¹, reusable by callers (MPC, ∆iFD).
};

/**
 * ∆FD: derivatives of forward dynamics, from torque inputs.
 * Runs all six steps (Fig. 14f): FD first, then ∆ID at the resulting
 * q̈, then the final M⁻¹ product with Eq. (3).
 */
FdDerivatives fdDerivatives(const RobotModel &robot, const VectorX &q,
                            const VectorX &qd, const VectorX &tau,
                            const std::vector<Vec6> *fext = nullptr);

/**
 * ∆iFD: derivatives of dynamics given q̈ and M⁻¹ (the Robomorphic
 *-compatible entry point, Table I last row): steps ④⑤⑥ only.
 */
FdDerivatives fdDerivativesGivenAccel(const RobotModel &robot,
                                      const VectorX &q, const VectorX &qd,
                                      const VectorX &qdd,
                                      const MatrixX &minv,
                                      const std::vector<Vec6> *fext =
                                          nullptr);

struct DynamicsWorkspace;

/**
 * Workspace forward dynamics (steps ①②③): all intermediates live in
 * @p ws and @p qdd is resized in place — zero heap allocations in
 * the steady state. This is the per-point kernel behind
 * BatchedDynamics::batchForwardDynamics.
 */
void forwardDynamics(const RobotModel &robot, DynamicsWorkspace &ws,
                     const VectorX &q, const VectorX &qd,
                     const VectorX &tau, VectorX &qdd,
                     const std::vector<Vec6> *fext = nullptr);

/**
 * Workspace ∆FD (all six steps): writes q̈, ∂q̈/∂q, ∂q̈/∂q̇ and M⁻¹
 * into @p out, reusing its storage across calls. Zero heap
 * allocations in the steady state. The per-point kernel behind
 * BatchedDynamics::batchFdDerivatives.
 *
 * @param plan optional column gating for the derivative steps ④⑤⑥:
 *             live columns of ∂q̈/∂u are bitwise identical to the
 *             dense call, dead columns exactly 0.0. Steps ①②③ stay
 *             dense (q̈ and M⁻¹ are needed in full regardless).
 */
void fdDerivatives(const RobotModel &robot, DynamicsWorkspace &ws,
                   const VectorX &q, const VectorX &qd, const VectorX &tau,
                   FdDerivatives &out,
                   const std::vector<Vec6> *fext = nullptr,
                   const ColumnPlan *plan = nullptr);

/** Workspace ∆iFD (steps ④⑤⑥ with q̈ and M⁻¹ supplied). */
void fdDerivativesGivenAccel(const RobotModel &robot,
                             DynamicsWorkspace &ws, const VectorX &q,
                             const VectorX &qd, const VectorX &qdd,
                             const MatrixX &minv, FdDerivatives &out,
                             const std::vector<Vec6> *fext = nullptr,
                             const ColumnPlan *plan = nullptr);

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_DYNAMICS_H
