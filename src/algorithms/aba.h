/**
 * @file
 * Articulated Body Algorithm: O(N) forward dynamics.
 *
 * The paper deliberately does NOT instantiate ABA in hardware
 * (Section III-A): it computes FD as M⁻¹(τ − C) to reuse the RNEA
 * and MMinvGen pipelines. ABA is implemented here as the efficient
 * software baseline (what Pinocchio's forward dynamics uses) and as
 * a cross-check for the accelerator's FD route.
 */

#ifndef DADU_ALGORITHMS_ABA_H
#define DADU_ALGORITHMS_ABA_H

#include <vector>

#include "linalg/matrixx.h"
#include "linalg/vec.h"
#include "model/robot_model.h"

namespace dadu::algo {

using linalg::Vec6;
using linalg::VectorX;
using model::RobotModel;

struct DynamicsWorkspace;

/**
 * Forward dynamics q̈ = FD(q, q̇, τ, f_ext) by the Articulated Body
 * Algorithm.
 *
 * Thin wrapper over the workspace overload with a per-call arena;
 * use the overload below in hot loops.
 */
VectorX aba(const RobotModel &robot, const VectorX &q, const VectorX &qd,
            const VectorX &tau, const std::vector<Vec6> *fext = nullptr);

/**
 * Workspace ABA: all per-link temporaries live in @p ws and @p qdd
 * is resized in place, so the steady state performs zero heap
 * allocations. Results are bitwise identical to the allocating
 * overload. @p qdd must not alias any input.
 */
void aba(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
         const VectorX &qd, const VectorX &tau, VectorX &qdd,
         const std::vector<Vec6> *fext = nullptr);

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_ABA_H
