/**
 * @file
 * Lane-parallel (SoA) dynamics kernels.
 *
 * Each pack* entry point evaluates one lane pack: up to kMaxLaneWidth
 * independent sample points whose fields are interleaved per lane
 * (structure of arrays) so the link-by-link sweeps vectorize across
 * the batch dimension. The kernels mirror the scalar workspace
 * algorithms expression by expression (see soa/pack.h for the
 * bitwise contract): lane l's outputs are bitwise identical to the
 * scalar kernel run on point l, for any supported width.
 *
 * Masking: `LaneBatch::mask` marks the active lanes. Inactive lanes
 * are padded internally by replicating the first active lane's
 * inputs (safe arithmetic, no NaN/div-by-zero traps) and their
 * outputs are never written — the machinery ROADMAP item 2's
 * per-column sparsity gating reuses.
 *
 * Allocation: each kernel draws its pack storage from a per-width
 * arena slot inside the caller's DynamicsWorkspace, created on first
 * use and reused afterwards — steady-state calls are allocation-free,
 * like the scalar workspace kernels.
 */

#ifndef DADU_ALGORITHMS_SOA_KERNELS_H
#define DADU_ALGORITHMS_SOA_KERNELS_H

#include "algorithms/dynamics.h"
#include "algorithms/workspace.h"
#include "linalg/matrixx.h"
#include "model/robot_model.h"

namespace dadu::algo::soa {

using linalg::MatrixX;
using linalg::VectorX;
using model::RobotModel;

/** Widest supported lane pack. */
inline constexpr int kMaxLaneWidth = 16;

/** True for the widths the kernels are instantiated at: 4, 8, 16. */
bool laneWidthSupported(int w);

/**
 * Engine default lane width: DADU_LANE_WIDTH if set to 1 (scalar
 * path), 4, 8 or 16; otherwise 8 — wide enough to fill an AVX2 or
 * AVX-512 register file, narrow enough that the per-link pack state
 * of a humanoid still fits in L1/L2.
 */
int defaultLaneWidth();

/**
 * One lane pack of inputs: per-lane pointers into caller storage
 * plus the active mask (bit l set = lane l holds a sample point).
 * Pointers of inactive lanes may be null. qd/tau/qdd may be null
 * wholesale for kernels that do not read them (e.g. Minv).
 */
struct LaneBatch
{
    const VectorX *q[kMaxLaneWidth] = {};
    const VectorX *qd[kMaxLaneWidth] = {};
    const VectorX *tau[kMaxLaneWidth] = {};
    const VectorX *qdd[kMaxLaneWidth] = {};  ///< packRnea / packFdGivenAccel
    const MatrixX *minv[kMaxLaneWidth] = {}; ///< packFdGivenAccel only
    unsigned mask = 0;

    /** Mask with the low @p w lanes active. */
    static unsigned
    fullMask(int w)
    {
        return w >= 32 ? ~0u : (1u << w) - 1u;
    }
};

/**
 * Forward dynamics q̈ = FD(q, q̇, τ) for one lane pack, on the same
 * MMinvGen route as the scalar forwardDynamics (steps ①②③).
 * @p qdd_out holds per-lane output pointers (ignored for inactive
 * lanes, may be null there).
 */
void packForwardDynamics(const RobotModel &robot, DynamicsWorkspace &ws,
                         int width, const LaneBatch &in,
                         VectorX *const *qdd_out);

/**
 * ∆FD (q̈, ∂q̈/∂q, ∂q̈/∂q̇, M⁻¹) for one lane pack.
 *
 * @param plan optional column gating (shared by every lane of the
 *             pack — the batched engine only routes mask-uniform
 *             batches here): the per-column fused ∆RNEA chains and
 *             the final M⁻¹ product run only for live columns, which
 *             stay bitwise identical to the dense pack (and to the
 *             gated scalar kernel, lane by lane); dead columns of
 *             ∂q̈/∂u are exactly 0.0. q̈ and M⁻¹ are always dense.
 */
void packFdDerivatives(const RobotModel &robot, DynamicsWorkspace &ws,
                       int width, const LaneBatch &in,
                       FdDerivatives *const *out,
                       const ColumnPlan *plan = nullptr);

/**
 * ∆iFD — steps ④⑤⑥ of ∆FD with q̈ and M⁻¹ supplied as inputs
 * (LaneBatch::qdd / LaneBatch::minv), mirroring the scalar
 * fdDerivativesGivenAccel: the dense ①②③ prefix is skipped
 * entirely, so a gated ∆iFD pack's cost scales with the live-column
 * count alone. Outputs: ∂q̈/∂q and ∂q̈/∂q̇ (gated like
 * packFdDerivatives); q̈ and M⁻¹ in the result are copies of the
 * inputs, as in the scalar kernel.
 */
void packFdGivenAccel(const RobotModel &robot, DynamicsWorkspace &ws,
                      int width, const LaneBatch &in,
                      FdDerivatives *const *out,
                      const ColumnPlan *plan = nullptr);

/** M⁻¹(q) for one lane pack. */
void packMinv(const RobotModel &robot, DynamicsWorkspace &ws, int width,
              const LaneBatch &in, MatrixX *const *minv_out);

/**
 * Articulated-body forward dynamics for one lane pack (the direct
 * ABA route; the batched engine's FD stays on the MMinvGen route to
 * match the scalar reference bitwise, but the ABA sweep is
 * lane-parallel too).
 */
void packAba(const RobotModel &robot, DynamicsWorkspace &ws, int width,
             const LaneBatch &in, VectorX *const *qdd_out);

/** Inverse dynamics τ = RNEA(q, q̇, q̈) for one lane pack. */
void packRnea(const RobotModel &robot, DynamicsWorkspace &ws, int width,
              const LaneBatch &in, VectorX *const *tau_out);

/** Joint-space mass matrix M(q) (CRBA sweep) for one lane pack. */
void packCrba(const RobotModel &robot, DynamicsWorkspace &ws, int width,
              const LaneBatch &in, MatrixX *const *m_out);

} // namespace dadu::algo::soa

#endif // DADU_ALGORITHMS_SOA_KERNELS_H
