/**
 * @file
 * Lane-pack primitives for the structure-of-arrays dynamics kernels.
 *
 * A Pack<W> holds one scalar field of W independent sample points,
 * contiguous in memory, so every arithmetic operator is a fixed
 * trip-count elementwise loop the compiler auto-vectorizes across
 * the batch dimension — the CPU analogue of the paper accelerator's
 * pipelined function units keeping W evaluations in flight.
 *
 * Bitwise contract: every operation here mirrors its scalar
 * counterpart in src/linalg/ and src/spatial/ expression by
 * expression, in the same order, including accumulations that start
 * from literal 0.0 and the sign conventions of the constant-folded
 * cross products. Elementwise IEEE-754 arithmetic is identical lane
 * by lane to the scalar sequence (the build disables FP contraction),
 * so lane l of any SoA kernel is bitwise equal to the scalar kernel
 * run on point l — which is also what makes the batched results
 * invariant under the lane width W.
 *
 * Data-dependent scalar branches (the `dk == 0.0` skip of the
 * U·D⁻¹·Uᵀ update, the zero-skip of MatrixX::multiplyInto) become
 * per-lane selects (addUnlessZero / subUnlessZero): a compare+blend
 * reproduces the skip semantics exactly, including the -0.0 cases
 * the scalar skip avoids touching.
 */

#ifndef DADU_ALGORITHMS_SOA_PACK_H
#define DADU_ALGORITHMS_SOA_PACK_H

#include <cstddef>

#include "linalg/mat.h"
#include "linalg/vec.h"
#include "model/joint.h"
#include "spatial/inertia.h"
#include "spatial/transform.h"

namespace dadu::algo::soa {

using linalg::Mat3;
using linalg::Mat66;
using linalg::Vec3;
using linalg::Vec6;

/**
 * W doubles of one field, one per sample point. Alignment is
 * min(W*8, 64): a full cache line once the pack spans one, but never
 * more than sizeof so arrays of packs stay dense (alignas(64) on a
 * Pack<4> would pad 32 -> 64 bytes and break the SoA layout).
 */
template <int W>
struct alignas((W * 8 < 64) ? W * 8 : 64) Pack
{
    static_assert(W == 4 || W == 8 || W == 16, "supported lane widths");

    double l[W];

    static Pack
    broadcast(double s)
    {
        Pack p;
        for (int i = 0; i < W; ++i)
            p.l[i] = s;
        return p;
    }

    static Pack zero() { return broadcast(0.0); }

    Pack &
    operator+=(const Pack &o)
    {
        for (int i = 0; i < W; ++i)
            l[i] += o.l[i];
        return *this;
    }

    Pack &
    operator-=(const Pack &o)
    {
        for (int i = 0; i < W; ++i)
            l[i] -= o.l[i];
        return *this;
    }
};

template <int W>
inline Pack<W>
operator+(const Pack<W> &a, const Pack<W> &b)
{
    Pack<W> r;
    for (int i = 0; i < W; ++i)
        r.l[i] = a.l[i] + b.l[i];
    return r;
}

template <int W>
inline Pack<W>
operator-(const Pack<W> &a, const Pack<W> &b)
{
    Pack<W> r;
    for (int i = 0; i < W; ++i)
        r.l[i] = a.l[i] - b.l[i];
    return r;
}

template <int W>
inline Pack<W>
operator*(const Pack<W> &a, const Pack<W> &b)
{
    Pack<W> r;
    for (int i = 0; i < W; ++i)
        r.l[i] = a.l[i] * b.l[i];
    return r;
}

template <int W>
inline Pack<W>
operator/(const Pack<W> &a, const Pack<W> &b)
{
    Pack<W> r;
    for (int i = 0; i < W; ++i)
        r.l[i] = a.l[i] / b.l[i];
    return r;
}

template <int W>
inline Pack<W>
operator-(const Pack<W> &a)
{
    Pack<W> r;
    for (int i = 0; i < W; ++i)
        r.l[i] = -a.l[i];
    return r;
}

template <int W>
inline Pack<W>
operator*(const Pack<W> &a, double s)
{
    Pack<W> r;
    for (int i = 0; i < W; ++i)
        r.l[i] = a.l[i] * s;
    return r;
}

template <int W>
inline Pack<W>
operator*(double s, const Pack<W> &a)
{
    Pack<W> r;
    for (int i = 0; i < W; ++i)
        r.l[i] = s * a.l[i];
    return r;
}

template <int W>
inline Pack<W>
operator/(double s, const Pack<W> &a)
{
    Pack<W> r;
    for (int i = 0; i < W; ++i)
        r.l[i] = s / a.l[i];
    return r;
}

/**
 * x += p on the lanes where c != 0.0 — the per-lane form of the
 * scalar zero-skip `if (c == 0.0) continue; x += ...` (vectorizes to
 * compare+blend). Lanes with c == 0 keep x untouched, exactly like
 * the scalar skip.
 */
template <int W>
inline void
addUnlessZero(Pack<W> &x, const Pack<W> &c, const Pack<W> &p)
{
    for (int i = 0; i < W; ++i)
        x.l[i] = c.l[i] == 0.0 ? x.l[i] : x.l[i] + p.l[i];
}

/** x -= p on the lanes where c != 0.0 (see addUnlessZero). */
template <int W>
inline void
subUnlessZero(Pack<W> &x, const Pack<W> &c, const Pack<W> &p)
{
    for (int i = 0; i < W; ++i)
        x.l[i] = c.l[i] == 0.0 ? x.l[i] : x.l[i] - p.l[i];
}

/**
 * True when some lane of c is exactly 0.0. When it returns false, a
 * plain += / -= is bitwise identical to the UnlessZero blends above
 * (every lane takes the arithmetic branch), so hot loops can test the
 * multiplier once and drop the per-element compare+blend.
 */
template <int W>
inline bool
anyZero(const Pack<W> &c)
{
    bool any = false;
    for (int i = 0; i < W; ++i)
        any = any || c.l[i] == 0.0;
    return any;
}

// --------------------------------------------------------------- vectors

/** Lane-packed 3-vector (mirror of linalg::Vec3). */
template <int W>
struct PVec3
{
    Pack<W> e[3];

    static PVec3
    zero()
    {
        PVec3 v;
        for (int i = 0; i < 3; ++i)
            v.e[i] = Pack<W>::zero();
        return v;
    }

    PVec3 &
    operator+=(const PVec3 &o)
    {
        for (int i = 0; i < 3; ++i)
            e[i] += o.e[i];
        return *this;
    }
};

template <int W>
inline PVec3<W>
operator+(const PVec3<W> &a, const PVec3<W> &b)
{
    PVec3<W> r;
    for (int i = 0; i < 3; ++i)
        r.e[i] = a.e[i] + b.e[i];
    return r;
}

template <int W>
inline PVec3<W>
operator-(const PVec3<W> &a, const PVec3<W> &b)
{
    PVec3<W> r;
    for (int i = 0; i < 3; ++i)
        r.e[i] = a.e[i] - b.e[i];
    return r;
}

/** Lane-packed 6-vector (mirror of linalg::Vec6). */
template <int W>
struct PVec6
{
    Pack<W> e[6];

    static PVec6
    zero()
    {
        PVec6 v;
        for (int i = 0; i < 6; ++i)
            v.e[i] = Pack<W>::zero();
        return v;
    }

    static PVec6
    broadcast(const Vec6 &s)
    {
        PVec6 v;
        for (int i = 0; i < 6; ++i)
            v.e[i] = Pack<W>::broadcast(s[i]);
        return v;
    }

    PVec6 &
    operator+=(const PVec6 &o)
    {
        for (int i = 0; i < 6; ++i)
            e[i] += o.e[i];
        return *this;
    }

    PVec6 &
    operator-=(const PVec6 &o)
    {
        for (int i = 0; i < 6; ++i)
            e[i] -= o.e[i];
        return *this;
    }

    /** Mirror of Vec6::dot (accumulates from 0.0, ascending). */
    Pack<W>
    dot(const PVec6 &o) const
    {
        Pack<W> s = Pack<W>::zero();
        for (int i = 0; i < 6; ++i)
            s += e[i] * o.e[i];
        return s;
    }
};

template <int W>
inline PVec6<W>
operator+(const PVec6<W> &a, const PVec6<W> &b)
{
    PVec6<W> r;
    for (int i = 0; i < 6; ++i)
        r.e[i] = a.e[i] + b.e[i];
    return r;
}

template <int W>
inline PVec6<W>
operator-(const PVec6<W> &a, const PVec6<W> &b)
{
    PVec6<W> r;
    for (int i = 0; i < 6; ++i)
        r.e[i] = a.e[i] - b.e[i];
    return r;
}

/** v * s with a per-lane scalar (mirror of Vec6 * double). */
template <int W>
inline PVec6<W>
operator*(const PVec6<W> &v, const Pack<W> &s)
{
    PVec6<W> r;
    for (int i = 0; i < 6; ++i)
        r.e[i] = v.e[i] * s;
    return r;
}

/** Broadcast Vec6 times a per-lane scalar (s.col(k) * qdd_r). */
template <int W>
inline PVec6<W>
broadcastScaled(const Vec6 &c, const Pack<W> &s)
{
    PVec6<W> r;
    for (int i = 0; i < 6; ++i)
        r.e[i] = c[i] * s;
    return r;
}

/** Mirror of Vec6::dot with a broadcast left operand (Sᵀ f). */
template <int W>
inline Pack<W>
dotBroadcast(const Vec6 &c, const PVec6<W> &f)
{
    Pack<W> s = Pack<W>::zero();
    for (int i = 0; i < 6; ++i)
        s += c[i] * f.e[i];
    return s;
}

/** 3D cross, both operands lane-packed (mirror of linalg::cross). */
template <int W>
inline PVec3<W>
cross(const PVec3<W> &a, const PVec3<W> &b)
{
    PVec3<W> r;
    r.e[0] = a.e[1] * b.e[2] - a.e[2] * b.e[1];
    r.e[1] = a.e[2] * b.e[0] - a.e[0] * b.e[2];
    r.e[2] = a.e[0] * b.e[1] - a.e[1] * b.e[0];
    return r;
}

/** 3D cross, broadcast left operand (h × v of the inertia apply). */
template <int W>
inline PVec3<W>
cross(const Vec3 &a, const PVec3<W> &b)
{
    PVec3<W> r;
    r.e[0] = a[1] * b.e[2] - a[2] * b.e[1];
    r.e[1] = a[2] * b.e[0] - a[0] * b.e[2];
    r.e[2] = a[0] * b.e[1] - a[1] * b.e[0];
    return r;
}

/** 3D cross, broadcast right operand. */
template <int W>
inline PVec3<W>
cross(const PVec3<W> &a, const Vec3 &b)
{
    PVec3<W> r;
    r.e[0] = a.e[1] * b[2] - a.e[2] * b[1];
    r.e[1] = a.e[2] * b[0] - a.e[0] * b[2];
    r.e[2] = a.e[0] * b[1] - a.e[1] * b[0];
    return r;
}

template <int W>
inline PVec3<W>
topHalf(const PVec6<W> &v)
{
    PVec3<W> r;
    for (int i = 0; i < 3; ++i)
        r.e[i] = v.e[i];
    return r;
}

template <int W>
inline PVec3<W>
bottomHalf(const PVec6<W> &v)
{
    PVec3<W> r;
    for (int i = 0; i < 3; ++i)
        r.e[i] = v.e[i + 3];
    return r;
}

template <int W>
inline PVec6<W>
join(const PVec3<W> &top, const PVec3<W> &bottom)
{
    PVec6<W> r;
    for (int i = 0; i < 3; ++i) {
        r.e[i] = top.e[i];
        r.e[i + 3] = bottom.e[i];
    }
    return r;
}

// -------------------------------------------------------------- matrices

/** Lane-packed 3x3 matrix, row-major (mirror of linalg::Mat3). */
template <int W>
struct PMat3
{
    Pack<W> m[9];

    Pack<W> &operator()(int r, int c) { return m[r * 3 + c]; }
    const Pack<W> &operator()(int r, int c) const { return m[r * 3 + c]; }

    /** Mirror of Mat3 * Vec3 (zero-seeded ascending accumulation). */
    PVec3<W>
    operator*(const PVec3<W> &v) const
    {
        PVec3<W> r;
        for (int i = 0; i < 3; ++i) {
            Pack<W> s = Pack<W>::zero();
            for (int j = 0; j < 3; ++j)
                s += (*this)(i, j) * v.e[j];
            r.e[i] = s;
        }
        return r;
    }

    /**
     * Mirror of e.transpose() * v: the scalar code materializes the
     * transpose then multiplies, accumulating e(j,i)·v[j] ascending.
     */
    PVec3<W>
    transposeMul(const PVec3<W> &v) const
    {
        PVec3<W> r;
        for (int i = 0; i < 3; ++i) {
            Pack<W> s = Pack<W>::zero();
            for (int j = 0; j < 3; ++j)
                s += (*this)(j, i) * v.e[j];
            r.e[i] = s;
        }
        return r;
    }

    /** Mirror of Mat3 * Mat3. */
    PMat3
    operator*(const PMat3 &o) const
    {
        PMat3 r;
        for (int i = 0; i < 3; ++i) {
            for (int k = 0; k < 3; ++k) {
                Pack<W> s = Pack<W>::zero();
                for (int j = 0; j < 3; ++j)
                    s += (*this)(i, j) * o(j, k);
                r(i, k) = s;
            }
        }
        return r;
    }
};

/** Mirror of linalg::skew. */
template <int W>
inline PMat3<W>
skew(const PVec3<W> &v)
{
    PMat3<W> m;
    const Pack<W> z = Pack<W>::zero();
    m(0, 0) = z;
    m(0, 1) = -v.e[2];
    m(0, 2) = v.e[1];
    m(1, 0) = v.e[2];
    m(1, 1) = z;
    m(1, 2) = -v.e[0];
    m(2, 0) = -v.e[1];
    m(2, 1) = v.e[0];
    m(2, 2) = z;
    return m;
}

/** Lane-packed 6x6 matrix, row-major (mirror of linalg::Mat66). */
template <int W>
struct PMat66
{
    Pack<W> m[36];

    Pack<W> &operator()(int r, int c) { return m[r * 6 + c]; }
    const Pack<W> &operator()(int r, int c) const { return m[r * 6 + c]; }

    static PMat66
    broadcast(const Mat66 &s)
    {
        PMat66 r;
        for (int i = 0; i < 6; ++i)
            for (int j = 0; j < 6; ++j)
                r(i, j) = Pack<W>::broadcast(s(i, j));
        return r;
    }

    /** Mirror of Mat66 += Mat66 with a broadcast right operand. */
    PMat66 &
    addBroadcast(const Mat66 &o)
    {
        for (int i = 0; i < 6; ++i)
            for (int j = 0; j < 6; ++j)
                (*this)(i, j) += Pack<W>::broadcast(o(i, j));
        return *this;
    }

    PMat66 &
    operator+=(const PMat66 &o)
    {
        for (int i = 0; i < 36; ++i)
            m[i] += o.m[i];
        return *this;
    }

    /** Mirror of Mat66 * Vec6 with a broadcast vector (I^A S_k). */
    PVec6<W>
    mulBroadcast(const Vec6 &v) const
    {
        PVec6<W> r;
        for (int i = 0; i < 6; ++i) {
            Pack<W> s = Pack<W>::zero();
            for (int j = 0; j < 6; ++j)
                s += (*this)(i, j) * v[j];
            r.e[i] = s;
        }
        return r;
    }

    /** Mirror of Mat66 * Vec6. */
    PVec6<W>
    operator*(const PVec6<W> &v) const
    {
        PVec6<W> r;
        for (int i = 0; i < 6; ++i) {
            Pack<W> s = Pack<W>::zero();
            for (int j = 0; j < 6; ++j)
                s += (*this)(i, j) * v.e[j];
            r.e[i] = s;
        }
        return r;
    }

    /** Mirror of Mat66 * Mat66. */
    PMat66
    operator*(const PMat66 &o) const
    {
        PMat66 r;
        for (int i = 0; i < 6; ++i) {
            for (int k = 0; k < 6; ++k) {
                Pack<W> s = Pack<W>::zero();
                for (int j = 0; j < 6; ++j)
                    s += (*this)(i, j) * o(j, k);
                r(i, k) = s;
            }
        }
        return r;
    }

    /**
     * Mirror of x.transpose() * o: the scalar code materializes the
     * transpose then runs the dense product, so entry (i,k)
     * accumulates x(j,i)·o(j,k) ascending in j.
     */
    PMat66
    transposeMul(const PMat66 &o) const
    {
        PMat66 r;
        for (int i = 0; i < 6; ++i) {
            for (int k = 0; k < 6; ++k) {
                Pack<W> s = Pack<W>::zero();
                for (int j = 0; j < 6; ++j)
                    s += (*this)(j, i) * o(j, k);
                r(i, k) = s;
            }
        }
        return r;
    }
};

/** Mirror of linalg::blocks66. */
template <int W>
inline PMat66<W>
blocks66(const PMat3<W> &tl, const PMat3<W> &tr, const PMat3<W> &bl,
         const PMat3<W> &br)
{
    PMat66<W> m;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            m(i, j) = tl(i, j);
            m(i, j + 3) = tr(i, j);
            m(i + 3, j) = bl(i, j);
            m(i + 3, j + 3) = br(i, j);
        }
    }
    return m;
}

// ---------------------------------------------------- spatial operators

/** Mirror of spatial::crossMotion, both operands packed. */
template <int W>
inline PVec6<W>
crossMotion(const PVec6<W> &v, const PVec6<W> &w)
{
    const PVec3<W> omega = topHalf(v);
    const PVec3<W> vlin = bottomHalf(v);
    const PVec3<W> womega = topHalf(w);
    const PVec3<W> wlin = bottomHalf(w);
    return join(cross(omega, womega),
                cross(omega, wlin) + cross(vlin, womega));
}

/** Mirror of spatial::crossMotion with a broadcast right operand. */
template <int W>
inline PVec6<W>
crossMotion(const PVec6<W> &v, const Vec6 &w)
{
    const PVec3<W> omega = topHalf(v);
    const PVec3<W> vlin = bottomHalf(v);
    const Vec3 womega = linalg::topHalf(w);
    const Vec3 wlin = linalg::bottomHalf(w);
    return join(cross(omega, womega),
                cross(omega, wlin) + cross(vlin, womega));
}

/** Mirror of spatial::crossMotion with a broadcast left operand. */
template <int W>
inline PVec6<W>
crossMotion(const Vec6 &v, const PVec6<W> &w)
{
    const Vec3 omega = linalg::topHalf(v);
    const Vec3 vlin = linalg::bottomHalf(v);
    const PVec3<W> womega = topHalf(w);
    const PVec3<W> wlin = bottomHalf(w);
    return join(cross(omega, womega),
                cross(omega, wlin) + cross(vlin, womega));
}

/** Mirror of spatial::crossForce, both operands packed. */
template <int W>
inline PVec6<W>
crossForce(const PVec6<W> &v, const PVec6<W> &f)
{
    const PVec3<W> omega = topHalf(v);
    const PVec3<W> vlin = bottomHalf(v);
    const PVec3<W> n = topHalf(f);
    const PVec3<W> flin = bottomHalf(f);
    return join(cross(omega, n) + cross(vlin, flin),
                cross(omega, flin));
}

/** Mirror of spatial::crossForce with a broadcast motion vector. */
template <int W>
inline PVec6<W>
crossForce(const Vec6 &v, const PVec6<W> &f)
{
    const Vec3 omega = linalg::topHalf(v);
    const Vec3 vlin = linalg::bottomHalf(v);
    const PVec3<W> n = topHalf(f);
    const PVec3<W> flin = bottomHalf(f);
    return join(cross(omega, n) + cross(vlin, flin),
                cross(omega, flin));
}

/** Mirror of spatial::crossMotionUnitScaled with a per-lane scale. */
template <int W>
inline PVec6<W>
crossMotionUnitScaled(const PVec6<W> &v, int axis, const Pack<W> &s)
{
    PVec6<W> r = PVec6<W>::zero();
    switch (axis) {
      case 0:
        r.e[1] = s * v.e[2];
        r.e[2] = -(s * v.e[1]);
        r.e[4] = s * v.e[5];
        r.e[5] = -(s * v.e[4]);
        break;
      case 1:
        r.e[0] = -(s * v.e[2]);
        r.e[2] = s * v.e[0];
        r.e[3] = -(s * v.e[5]);
        r.e[5] = s * v.e[3];
        break;
      case 2:
        r.e[0] = s * v.e[1];
        r.e[1] = -(s * v.e[0]);
        r.e[3] = s * v.e[4];
        r.e[4] = -(s * v.e[3]);
        break;
      case 3:
        r.e[4] = s * v.e[2];
        r.e[5] = -(s * v.e[1]);
        break;
      case 4:
        r.e[3] = -(s * v.e[2]);
        r.e[5] = s * v.e[0];
        break;
      default:
        r.e[3] = s * v.e[1];
        r.e[4] = -(s * v.e[0]);
        break;
    }
    return r;
}

/** Mirror of spatial::crossMotionUnit. */
template <int W>
inline PVec6<W>
crossMotionUnit(const PVec6<W> &v, int axis)
{
    PVec6<W> r = PVec6<W>::zero();
    switch (axis) {
      case 0:
        r.e[1] = v.e[2];
        r.e[2] = -v.e[1];
        r.e[4] = v.e[5];
        r.e[5] = -v.e[4];
        break;
      case 1:
        r.e[0] = -v.e[2];
        r.e[2] = v.e[0];
        r.e[3] = -v.e[5];
        r.e[5] = v.e[3];
        break;
      case 2:
        r.e[0] = v.e[1];
        r.e[1] = -v.e[0];
        r.e[3] = v.e[4];
        r.e[4] = -v.e[3];
        break;
      case 3:
        r.e[4] = v.e[2];
        r.e[5] = -v.e[1];
        break;
      case 4:
        r.e[3] = -v.e[2];
        r.e[5] = v.e[0];
        break;
      default:
        r.e[3] = v.e[1];
        r.e[4] = -v.e[0];
        break;
    }
    return r;
}

/**
 * Lane-packed Plücker transform (mirror of spatial::SpatialTransform:
 * rotation E and translation r vary per lane — the joint trigonometry
 * is evaluated per lane by the scalar linkTransform and scattered in).
 */
template <int W>
struct PTransform
{
    PMat3<W> e;
    PVec3<W> r;

    /** Scatter one lane's transform into the pack. */
    void
    setLane(int lane, const spatial::SpatialTransform &x)
    {
        const Mat3 &rot = x.rotationPart();
        const Vec3 &tr = x.translationPart();
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j)
                e(i, j).l[lane] = rot(i, j);
            r.e[i].l[lane] = tr[i];
        }
    }

    /** Mirror of SpatialTransform::applyMotion. */
    PVec6<W>
    applyMotion(const PVec6<W> &v) const
    {
        const PVec3<W> omega = topHalf(v);
        const PVec3<W> vlin = bottomHalf(v);
        return join(e * omega, e * (vlin - cross(r, omega)));
    }

    /** applyMotion of a broadcast vector (gravity at the base). */
    PVec6<W>
    applyMotionBroadcast(const Vec6 &v) const
    {
        return applyMotion(PVec6<W>::broadcast(v));
    }

    /** Mirror of SpatialTransform::applyTransposeForce. */
    PVec6<W>
    applyTransposeForce(const PVec6<W> &f) const
    {
        const PVec3<W> n = e.transposeMul(topHalf(f));
        const PVec3<W> flin = e.transposeMul(bottomHalf(f));
        return join(n + cross(r, flin), flin);
    }

    /** Mirror of SpatialTransform::toMatrix. */
    PMat66<W>
    toMatrix() const
    {
        const PMat3<W> erx = e * skew(r);
        PMat3<W> nerx;
        for (int i = 0; i < 9; ++i)
            nerx.m[i] = -erx.m[i];
        PMat3<W> zero3;
        for (int i = 0; i < 9; ++i)
            zero3.m[i] = Pack<W>::zero();
        return blocks66(e, zero3, nerx, e);
    }
};

// -------------------------------------------------- broadcast operators

/**
 * Mirror of SpatialInertia::apply for a broadcast (model-constant)
 * inertia and a lane-packed motion vector.
 */
template <int W>
inline PVec6<W>
inertiaApply(const spatial::SpatialInertia &si, const PVec6<W> &v)
{
    const PVec3<W> omega = topHalf(v);
    const PVec3<W> vlin = bottomHalf(v);
    const Mat3 &ibar = si.rotationalInertia();
    const Vec3 &h = si.firstMoment();
    const double mass = si.mass();

    PVec3<W> iw;
    for (int i = 0; i < 3; ++i) {
        Pack<W> s = Pack<W>::zero();
        for (int j = 0; j < 3; ++j)
            s += ibar(i, j) * omega.e[j];
        iw.e[i] = s;
    }
    PVec3<W> mv;
    for (int i = 0; i < 3; ++i)
        mv.e[i] = vlin.e[i] * mass;
    return join(iw + cross(h, vlin), mv - cross(h, omega));
}

/**
 * Mirror of MotionSubspace::applySegment: S q̇ read from lane packs
 * at the joint's DOF offset (zero-seeded column accumulation).
 */
template <int W>
inline PVec6<W>
applySegment(const model::MotionSubspace &s, const Pack<W> *seg)
{
    PVec6<W> v = PVec6<W>::zero();
    for (int i = 0; i < s.nv(); ++i) {
        const Vec6 &c = s.col(i);
        for (int a = 0; a < 6; ++a)
            v.e[a] += c[a] * seg[i];
    }
    return v;
}

// ------------------------------------------------------------ small LDLT

/**
 * Lane-parallel mirror of linalg::SmallLdlt (the non-pivoting joint-
 * space D_i factorization, n <= 6). One difference: the scalar code
 * early-outs on a zero pivot; lanes cannot return independently, so
 * a zero pivot lane divides through to inf/nan instead — it mirrors
 * a scalar factorization failure, which the SPD D_i blocks of
 * ABA/MMinvGen never produce (and the scalar callers never check).
 */
template <int W>
struct PackSmallLdlt
{
    Pack<W> fac[36];
    Pack<W> d[6];
    int n = 0;

    void
    compute(const Pack<W> *a, int dim)
    {
        n = dim;
        for (int j = 0; j < n; ++j) {
            Pack<W> dj = a[j * n + j];
            for (int k = 0; k < j; ++k)
                dj -= fac[j * n + k] * fac[j * n + k] * d[k];
            d[j] = dj;
            fac[j * n + j] = Pack<W>::broadcast(1.0);
            for (int i = j + 1; i < n; ++i) {
                Pack<W> s = a[i * n + j];
                for (int k = 0; k < j; ++k)
                    s -= fac[i * n + k] * fac[j * n + k] * d[k];
                fac[i * n + j] = s / dj;
            }
        }
    }

    void
    solveInPlace(Pack<W> *b) const
    {
        for (int i = 0; i < n; ++i) {
            Pack<W> s = b[i];
            for (int j = 0; j < i; ++j)
                s -= fac[i * n + j] * b[j];
            b[i] = s;
        }
        for (int i = 0; i < n; ++i)
            b[i] = b[i] / d[i];
        for (int i = n - 1; i >= 0; --i) {
            Pack<W> s = b[i];
            for (int j = i + 1; j < n; ++j)
                s -= fac[j * n + i] * b[j];
            b[i] = s;
        }
    }

    void
    inverseInto(Pack<W> *out) const
    {
        Pack<W> col[6];
        for (int c = 0; c < n; ++c) {
            for (int i = 0; i < n; ++i)
                col[i] = Pack<W>::broadcast(i == c ? 1.0 : 0.0);
            solveInPlace(col);
            for (int r = 0; r < n; ++r)
                out[r * n + c] = col[r];
        }
    }
};

} // namespace dadu::algo::soa

#endif // DADU_ALGORITHMS_SOA_PACK_H
