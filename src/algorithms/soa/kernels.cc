#include "algorithms/soa/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <memory>

#include "algorithms/soa/pack.h"
#include "linalg/aligned.h"
#include "spatial/transform.h"

namespace dadu::algo::soa {

namespace {

using linalg::aligned_vector;
using linalg::Vec6;
using spatial::SpatialTransform;

/** ∆RNEA cell, lane-packed (mirror of DynamicsWorkspace::DerivCell). */
template <int W>
struct PDerivCell
{
    PVec6<W> dv_dq, dv_dqd;
    PVec6<W> da_dq, da_dqd;
    PVec6<W> df_dq, df_dqd;
};

/**
 * Per-width pack arena, stored type-erased inside DynamicsWorkspace
 * (one slot per width) and rebuilt on topology change — ensure() of
 * the workspace drops the slots, so a live arena always matches the
 * model it was sized for.
 */
template <int W>
struct LaneArena : SoaArenaBase
{
    int nb = 0, nq = 0, nv = 0;

    // Gathered inputs and joint-space scratch.
    aligned_vector<Pack<W>> q, qd, tau, qddp; ///< nq / nv packs.
    aligned_vector<Pack<W>> bias, tmp;        ///< nv packs.

    // Per-link sweep state (mirrors the scalar workspace arenas).
    aligned_vector<PTransform<W>> xf;            ///< iXλ per link.
    aligned_vector<PVec6<W>> v, c, a, pa, f;     ///< ABA/∆RNEA state.
    aligned_vector<PVec6<W>> rv, ra, rf;         ///< RNEA (bias) state.
    aligned_vector<PVec6<W>> vc, ac, vj, iv;     ///< ∆RNEA link temps.
    aligned_vector<PMat66<W>> ia;                ///< I^A per link.
    aligned_vector<PMat66<W>> ic;                ///< I^C per link (CRBA).

    // Per-joint small blocks, flat with fixed strides (as scalar).
    aligned_vector<PVec6<W>> ucols;  ///< nb*6.
    aligned_vector<Pack<W>> dinv;    ///< nb*36.
    aligned_vector<Pack<W>> uvec;    ///< nb*6.
    PackSmallLdlt<W> ldlt;

    // MMinvGen force/propagation workspaces: entry
    // [i*(nv*6) + j*6 + a] mirrors the scalar fmat[i](j, a).
    aligned_vector<Pack<W>> fmat, pmat;

    // Joint-space matrices, row-major nv x nv packs.
    aligned_vector<Pack<W>> jsout;      ///< M⁻¹ / M output.
    aligned_vector<Pack<W>> dtq, dtqd;  ///< ∂τ/∂q, ∂τ/∂q̇.
    aligned_vector<Pack<W>> dqq, dqqd;  ///< ∂q̈/∂q, ∂q̈/∂q̇.

    // ∆RNEA cells, nb*nv, cell (i, col) at [col*nb + i] — the sweep
    // runs column-by-column, so one column's cell chain is contiguous
    // and L1-resident for its whole forward+backward round trip.
    aligned_vector<PDerivCell<W>> dcells;

    // Column topology: owning link, owner's subtree (ascending), and
    // the owner's strict ancestors (ascending) per DOF column.
    std::vector<int> col_link;
    std::vector<std::vector<int>> col_desc, col_anc;

    void
    ensure(const RobotModel &robot)
    {
        if (nb == robot.nb() && nq == robot.nq() && nv == robot.nv())
            return;
        nb = robot.nb();
        nq = robot.nq();
        nv = robot.nv();
        const std::size_t snb = static_cast<std::size_t>(nb);
        const std::size_t snv = static_cast<std::size_t>(nv);

        q.assign(static_cast<std::size_t>(nq), Pack<W>::zero());
        qd.assign(snv, Pack<W>::zero());
        tau.assign(snv, Pack<W>::zero());
        qddp.assign(snv, Pack<W>::zero());
        bias.assign(snv, Pack<W>::zero());
        tmp.assign(snv, Pack<W>::zero());

        xf.assign(snb, PTransform<W>());
        for (auto *vec :
             {&v, &c, &a, &pa, &f, &rv, &ra, &rf, &vc, &ac, &vj, &iv})
            vec->assign(snb, PVec6<W>::zero());
        ia.assign(snb, PMat66<W>());
        ic.assign(snb, PMat66<W>());

        ucols.assign(snb * 6, PVec6<W>::zero());
        dinv.assign(snb * 36, Pack<W>::zero());
        uvec.assign(snb * 6, Pack<W>::zero());

        fmat.assign(snb * snv * 6, Pack<W>::zero());
        pmat.assign(snb * snv * 6, Pack<W>::zero());

        jsout.assign(snv * snv, Pack<W>::zero());
        dtq.assign(snv * snv, Pack<W>::zero());
        dtqd.assign(snv * snv, Pack<W>::zero());
        dqq.assign(snv * snv, Pack<W>::zero());
        dqqd.assign(snv * snv, Pack<W>::zero());

        dcells.assign(snb * snv, PDerivCell<W>());

        col_link.assign(snv, 0);
        col_desc.assign(snv, {});
        col_anc.assign(snv, {});
        for (int i = 0; i < nb; ++i) {
            const int vi = robot.link(i).vIndex;
            for (int k = 0; k < robot.subspace(i).nv(); ++k)
                col_link[static_cast<std::size_t>(vi) + k] = i;
        }
        for (int col = 0; col < nv; ++col) {
            const int jc = col_link[col];
            col_desc[col] = robot.subtree(jc);
            for (int p = robot.parent(jc); p != -1; p = robot.parent(p))
                col_anc[col].push_back(p);
            std::reverse(col_anc[col].begin(), col_anc[col].end());
        }

        assert(linalg::isAligned(q.data()) && linalg::isAligned(xf.data()));
        assert(linalg::isAligned(ia.data()) && linalg::isAligned(fmat.data()));
        assert(linalg::isAligned(jsout.data()) &&
               linalg::isAligned(dcells.data()));
    }
};

template <int W>
constexpr int
slotIndex()
{
    return W == 4 ? 0 : W == 8 ? 1 : 2;
}

template <int W>
LaneArena<W> &
arenaFor(DynamicsWorkspace &ws, const RobotModel &robot)
{
    ws.ensure(robot);
    std::unique_ptr<SoaArenaBase> &slot = ws.soa_arenas[slotIndex<W>()];
    if (!slot)
        slot = std::make_unique<LaneArena<W>>();
    auto &la = static_cast<LaneArena<W> &>(*slot);
    la.ensure(robot);
    return la;
}

/**
 * Per-lane input pointers with inactive lanes replicated from the
 * first active lane: every lane then runs safe, representative
 * arithmetic (no NaN or div-by-zero from uninitialized padding) and
 * the scatters simply skip the inactive lanes.
 */
template <int W>
struct Lanes
{
    const VectorX *q[W];
    const VectorX *qd[W];
    const VectorX *tau[W];
    const VectorX *qdd[W];
    const MatrixX *minv[W];
    bool active[W];
};

template <int W>
Lanes<W>
resolveLanes(const LaneBatch &in)
{
    static_assert(W <= kMaxLaneWidth);
    int first = -1;
    for (int l = 0; l < W; ++l) {
        if (in.mask >> l & 1u) {
            first = l;
            break;
        }
    }
    assert(first >= 0 && "LaneBatch needs at least one active lane");
    Lanes<W> ln;
    for (int l = 0; l < W; ++l) {
        const bool act = (in.mask >> l & 1u) != 0;
        ln.active[l] = act;
        const int src = act ? l : first;
        ln.q[l] = in.q[src];
        ln.qd[l] = in.qd[src];
        ln.tau[l] = in.tau[src];
        ln.qdd[l] = in.qdd[src];
        ln.minv[l] = in.minv[src];
    }
    return ln;
}

/** Gather n scalars per lane into n packs (lane-transposed copy). */
template <int W>
void
gatherPacks(Pack<W> *dst, const VectorX *const *src, int n)
{
    for (int j = 0; j < n; ++j)
        for (int l = 0; l < W; ++l)
            dst[j].l[l] = (*src[l])[j];
}

/** Gather one n x n matrix per lane into row-major packs. */
template <int W>
void
gatherMatrixPacks(Pack<W> *dst, const MatrixX *const *src, int n)
{
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            for (int l = 0; l < W; ++l)
                dst[r * n + c].l[l] = (*src[l])(r, c);
}

/**
 * Link transforms iXλ(q) per lane: the joint trigonometry runs
 * through the scalar linkTransform (libm sin/cos per lane keeps the
 * bitwise contract; a vectorized libm would not), and only the
 * resulting E/r are scattered into packs.
 */
template <int W>
void
gatherTransforms(const RobotModel &robot, LaneArena<W> &la,
                 const Lanes<W> &ln)
{
    using model::JointType;
    const int nb = robot.nb();
    for (int i = 0; i < nb; ++i) {
        const auto &link = robot.link(i);
        const JointType t = link.joint;
        const linalg::Mat3 &et = link.xtree.rotationPart();
        const linalg::Vec3 &rt = link.xtree.translationPart();
        PTransform<W> &x = la.xf[i];
        switch (t) {
          case JointType::RevoluteX:
          case JointType::RevoluteY:
          case JointType::RevoluteZ: {
            // Only the joint trigonometry is per-lane scalar (libm
            // sin/cos keeps the bitwise contract); the rot* pattern
            // and the Ej·Et composition mirror rotX/Y/Z and
            // Mat3::operator* elementwise across lanes.
            Pack<W> s, c;
            for (int lane = 0; lane < W; ++lane) {
                const double qi = (*ln.q[lane])[link.qIndex];
                s.l[lane] = std::sin(qi);
                c.l[lane] = std::cos(qi);
            }
            const Pack<W> zero = Pack<W>::zero();
            const Pack<W> one = Pack<W>::broadcast(1.0);
            const Pack<W> ns = -s;
            PMat3<W> ej;
            switch (t) {
              case JointType::RevoluteX:
                ej.m[0] = one;  ej.m[1] = zero; ej.m[2] = zero;
                ej.m[3] = zero; ej.m[4] = c;    ej.m[5] = s;
                ej.m[6] = zero; ej.m[7] = ns;   ej.m[8] = c;
                break;
              case JointType::RevoluteY:
                ej.m[0] = c;    ej.m[1] = zero; ej.m[2] = ns;
                ej.m[3] = zero; ej.m[4] = one;  ej.m[5] = zero;
                ej.m[6] = s;    ej.m[7] = zero; ej.m[8] = c;
                break;
              default: // RevoluteZ
                ej.m[0] = c;    ej.m[1] = s;    ej.m[2] = zero;
                ej.m[3] = ns;   ej.m[4] = c;    ej.m[5] = zero;
                ej.m[6] = zero; ej.m[7] = zero; ej.m[8] = one;
                break;
            }
            for (int r = 0; r < 3; ++r) {
                for (int k = 0; k < 3; ++k) {
                    Pack<W> acc = Pack<W>::zero();
                    for (int j = 0; j < 3; ++j)
                        acc += ej(r, j) * et(j, k);
                    x.e(r, k) = acc;
                }
            }
            // r = rt + Etᵀ·0: lane-invariant — one scalar evaluation
            // of the exact composition expression, broadcast.
            const linalg::Vec3 rc =
                rt + et.transpose() * linalg::Vec3::zero();
            for (int a = 0; a < 3; ++a)
                x.r.e[a] = Pack<W>::broadcast(rc[a]);
            break;
          }
          case JointType::PrismaticX:
          case JointType::PrismaticY:
          case JointType::PrismaticZ: {
            // E = I·Et is lane-invariant; r = rt + Etᵀ·rj with rj
            // one-hot in q mirrors the composition elementwise.
            const int ax = t == JointType::PrismaticX   ? 0
                           : t == JointType::PrismaticY ? 1
                                                        : 2;
            Pack<W> qp;
            for (int lane = 0; lane < W; ++lane)
                qp.l[lane] = (*ln.q[lane])[link.qIndex];
            const linalg::Mat3 ec = linalg::Mat3::identity() * et;
            for (int r = 0; r < 3; ++r)
                for (int k = 0; k < 3; ++k)
                    x.e(r, k) = Pack<W>::broadcast(ec(r, k));
            Pack<W> rj[3] = {Pack<W>::zero(), Pack<W>::zero(),
                             Pack<W>::zero()};
            rj[ax] = qp;
            for (int a = 0; a < 3; ++a) {
                Pack<W> acc = Pack<W>::zero();
                for (int j = 0; j < 3; ++j)
                    acc += et(j, a) * rj[j];
                x.r.e[a] = Pack<W>::broadcast(rt[a]) + acc;
            }
            break;
          }
          default:
            // Quaternion joints (spherical / floating): per-lane
            // scalar composition.
            for (int lane = 0; lane < W; ++lane)
                x.setLane(lane, robot.linkTransform(i, *ln.q[lane]));
            break;
        }
    }
}

template <int W>
void
scatterVector(const Pack<W> *src, int n, const Lanes<W> &ln,
              VectorX *const *out)
{
    for (int l = 0; l < W; ++l) {
        if (!ln.active[l])
            continue;
        VectorX &o = *out[l];
        if (static_cast<int>(o.size()) != n)
            o.resize(n);
        for (int j = 0; j < n; ++j)
            o[j] = src[j].l[l];
    }
}

template <int W>
void
scatterMatrixLane(const Pack<W> *src, int rows, int cols, int lane,
                  MatrixX &o)
{
    // resize() zero-fills even at the same shape; every entry is
    // overwritten below, so only reshape when the shape changed.
    if (static_cast<int>(o.rows()) != rows ||
        static_cast<int>(o.cols()) != cols)
        o.resize(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            o(r, c) = src[r * cols + c].l[lane];
}

/**
 * Column-gated scatter: live columns copy from the packs, dead
 * columns are written as exact 0.0 (never read from the arena, which
 * holds stale values there) — matching the gated scalar kernels,
 * whose resize() zero-fill leaves dead columns +0.0.
 */
template <int W>
void
scatterMatrixLaneCols(const Pack<W> *src, int rows, int cols, int lane,
                      MatrixX &o, const ColumnPlan &plan)
{
    if (static_cast<int>(o.rows()) != rows ||
        static_cast<int>(o.cols()) != cols)
        o.resize(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            o(r, c) = plan.isLive(c) ? src[r * cols + c].l[lane] : 0.0;
}

// ------------------------------------------------------------- RNEA

/**
 * Mirror of the scalar rnea() sweep (reuse_transforms form). With
 * @p qdd == nullptr the qdd_is_zero fast path is taken (bias force).
 */
template <int W>
void
rneaSweep(const RobotModel &robot, LaneArena<W> &la, const Pack<W> *qd,
          const Pack<W> *qdd, PVec6<W> *v, PVec6<W> *a, PVec6<W> *f,
          Pack<W> *tau_out)
{
    const int nb = robot.nb();

    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int vi = robot.link(i).vIndex;
        const PVec6<W> vj = applySegment(s, qd + vi);
        const int vj_ax = s.nv() == 1 ? s.unitAxis(0) : -1;

        const PVec6<W> vparent =
            lam == -1 ? PVec6<W>::zero() : v[lam];
        v[i] = la.xf[i].applyMotion(vparent) + vj;
        const PVec6<W> vxvj =
            vj_ax >= 0 ? crossMotionUnitScaled(v[i], vj_ax, qd[vi])
                       : crossMotion(v[i], vj);
        const PVec6<W> xa =
            lam == -1 ? la.xf[i].applyMotionBroadcast(robot.gravity())
                      : la.xf[i].applyMotion(a[lam]);
        if (qdd == nullptr)
            a[i] = xa + vxvj;
        else
            a[i] = xa + applySegment(s, qdd + vi) + vxvj;
        const auto &inertia = robot.link(i).inertia;
        f[i] = inertiaApply(inertia, a[i]) +
               crossForce(v[i], inertiaApply(inertia, v[i]));
    }

    for (int i = nb - 1; i >= 0; --i) {
        const auto &s = robot.subspace(i);
        const int vi = robot.link(i).vIndex;
        for (int k = 0; k < s.nv(); ++k) {
            const int ax = s.unitAxis(k);
            tau_out[vi + k] =
                ax >= 0 ? f[i].e[ax] : dotBroadcast(s.col(k), f[i]);
        }
        const int lam = robot.parent(i);
        if (lam != -1)
            f[lam] += la.xf[i].applyTransposeForce(f[i]);
    }
}

// ---------------------------------------------------------- MMinvGen

/**
 * Mirror of the scalar mminvGen() (reuse_transforms form), writing
 * the joint-space result into @p out (nv x nv packs, row-major).
 */
template <int W>
void
minvCore(const RobotModel &robot, DynamicsWorkspace &ws, LaneArena<W> &la,
         bool out_m, bool out_minv, Pack<W> *out)
{
    assert(out_m != out_minv);
    const int nb = robot.nb();
    const int nv = robot.nv();
    const std::size_t stride = static_cast<std::size_t>(nv) * 6;

    // out.resize(nv, nv) re-zeroes every entry in the scalar code.
    for (int i = 0; i < nv * nv; ++i)
        out[i] = Pack<W>::zero();

    for (int i = 0; i < nb; ++i) {
        for (int k = 0; k < 36; ++k)
            la.ia[i].m[k] = Pack<W>::zero();
        Pack<W> *f = &la.fmat[static_cast<std::size_t>(i) * stride];
        for (int j : ws.tree_cols[i])
            for (int a = 0; a < 6; ++a)
                f[j * 6 + a] = Pack<W>::zero();
    }

    // Backward sweep.
    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        PVec6<W> *ucols = &la.ucols[static_cast<std::size_t>(i) * 6];
        Pack<W> *dinv = &la.dinv[static_cast<std::size_t>(i) * 36];
        Pack<W> *f = &la.fmat[static_cast<std::size_t>(i) * stride];

        la.ia[i].addBroadcast(robot.link(i).inertia.toMatrix());

        for (int k = 0; k < ni; ++k) {
            const int ax = s.unitAxis(k);
            if (ax >= 0) {
                for (int a = 0; a < 6; ++a)
                    ucols[k].e[a] = la.ia[i](a, ax);
            } else {
                ucols[k] = la.ia[i].mulBroadcast(s.col(k));
            }
        }
        Pack<W> d[36];
        for (int r = 0; r < ni; ++r) {
            const int ax = s.unitAxis(r);
            for (int k = 0; k < ni; ++k)
                d[r * ni + k] = ax >= 0
                                    ? ucols[k].e[ax]
                                    : dotBroadcast(s.col(r), ucols[k]);
        }
        if (ni == 1) {
            dinv[0] = 1.0 / d[0];
        } else {
            la.ldlt.compute(d, ni);
            la.ldlt.inverseInto(dinv);
        }

        if (out_minv) {
            for (int r = 0; r < ni; ++r)
                for (int k = 0; k < ni; ++k)
                    out[(vi + r) * nv + (vi + k)] = dinv[r * ni + k];
            for (int j : ws.tree_cols[i]) {
                if (j >= vi && j < vi + ni)
                    continue;
                Pack<W> stf[6];
                for (int r = 0; r < ni; ++r) {
                    const int ax = s.unitAxis(r);
                    if (ax >= 0) {
                        stf[r] = f[j * 6 + ax];
                        continue;
                    }
                    Pack<W> acc = Pack<W>::zero();
                    for (int a = 0; a < 6; ++a)
                        acc += s.col(r)[a] * f[j * 6 + a];
                    stf[r] = acc;
                }
                for (int r = 0; r < ni; ++r) {
                    Pack<W> val = Pack<W>::zero();
                    for (int k = 0; k < ni; ++k)
                        val -= dinv[r * ni + k] * stf[k];
                    out[(vi + r) * nv + j] = val;
                }
            }
        }
        if (out_m) {
            for (int r = 0; r < ni; ++r)
                for (int k = 0; k < ni; ++k)
                    out[(vi + r) * nv + (vi + k)] = d[r * ni + k];
            for (int j : ws.tree_cols[i]) {
                if (j >= vi && j < vi + ni)
                    continue;
                for (int r = 0; r < ni; ++r) {
                    const int ax = s.unitAxis(r);
                    Pack<W> acc;
                    if (ax >= 0) {
                        acc = f[j * 6 + ax];
                    } else {
                        acc = Pack<W>::zero();
                        for (int a = 0; a < 6; ++a)
                            acc += s.col(r)[a] * f[j * 6 + a];
                    }
                    out[(vi + r) * nv + j] = acc;
                    out[j * nv + (vi + r)] = acc;
                }
            }
        }

        if (lam != -1) {
            if (out_minv) {
                for (int j : ws.tree_cols[i]) {
                    for (int a = 0; a < 6; ++a) {
                        Pack<W> acc = Pack<W>::zero();
                        for (int k = 0; k < ni; ++k)
                            acc += ucols[k].e[a] * out[(vi + k) * nv + j];
                        f[j * 6 + a] += acc;
                    }
                }
                // IA -= U D⁻¹ Uᵀ with the scalar dk == 0 skip done
                // per lane (compare+blend; see pack.h). LDLT pivots
                // are nonzero for any sane inertia, so the no-zero
                // fast path is the one that runs; dk·u_r[a] is hoisted
                // per row exactly as the scalar left-to-right product
                // (dk·u_r[a])·u_k[b] associates.
                for (int r = 0; r < ni; ++r) {
                    for (int k = 0; k < ni; ++k) {
                        const Pack<W> dk = dinv[r * ni + k];
                        if (!anyZero(dk)) {
                            for (int a = 0; a < 6; ++a) {
                                const Pack<W> dka = dk * ucols[r].e[a];
                                for (int b = 0; b < 6; ++b)
                                    la.ia[i](a, b) -= dka * ucols[k].e[b];
                            }
                        } else {
                            for (int a = 0; a < 6; ++a) {
                                const Pack<W> dka = dk * ucols[r].e[a];
                                for (int b = 0; b < 6; ++b)
                                    subUnlessZero(la.ia[i](a, b), dk,
                                                  dka * ucols[k].e[b]);
                            }
                        }
                    }
                }
            }
            if (out_m) {
                for (int k = 0; k < ni; ++k)
                    for (int a = 0; a < 6; ++a)
                        f[(vi + k) * 6 + a] = ucols[k].e[a];
            }
            Pack<W> *flam = &la.fmat[static_cast<std::size_t>(lam) * stride];
            for (int j : ws.tree_cols[i]) {
                PVec6<W> col;
                for (int a = 0; a < 6; ++a)
                    col.e[a] = f[j * 6 + a];
                const PVec6<W> up = la.xf[i].applyTransposeForce(col);
                for (int a = 0; a < 6; ++a)
                    flam[j * 6 + a] += up.e[a];
            }
            const PMat66<W> xm = la.xf[i].toMatrix();
            const PMat66<W> n = la.ia[i] * xm;
            for (int r = 0; r < 6; ++r) {
                for (int col = r; col < 6; ++col) {
                    Pack<W> acc = Pack<W>::zero();
                    for (int k = 0; k < 6; ++k)
                        acc += xm(k, r) * n(k, col);
                    la.ia[lam](r, col) += acc;
                    if (col != r)
                        la.ia[lam](col, r) += acc;
                }
            }
        }
    }

    if (out_minv) {
        // Forward completion sweep.
        for (int i = 0; i < nb; ++i) {
            const int lam = robot.parent(i);
            const auto &s = robot.subspace(i);
            const int ni = s.nv();
            const int vi = robot.link(i).vIndex;

            const PVec6<W> *ucols =
                &la.ucols[static_cast<std::size_t>(i) * 6];
            const Pack<W> *dinv =
                &la.dinv[static_cast<std::size_t>(i) * 36];
            Pack<W> *pm = &la.pmat[static_cast<std::size_t>(i) * stride];

            for (int j = vi; j < nv; ++j) {
                PVec6<W> xp = PVec6<W>::zero();
                if (lam != -1) {
                    const Pack<W> *plam_m =
                        &la.pmat[static_cast<std::size_t>(lam) * stride];
                    PVec6<W> plam;
                    for (int a = 0; a < 6; ++a)
                        plam.e[a] = plam_m[j * 6 + a];
                    xp = la.xf[i].applyMotion(plam);
                    Pack<W> ut[6];
                    for (int r = 0; r < ni; ++r)
                        ut[r] = ucols[r].dot(xp);
                    for (int r = 0; r < ni; ++r) {
                        Pack<W> val = Pack<W>::zero();
                        for (int k = 0; k < ni; ++k)
                            val += dinv[r * ni + k] * ut[k];
                        out[(vi + r) * nv + j] -= val;
                    }
                }
                PVec6<W> pcol = PVec6<W>::zero();
                for (int k = 0; k < ni; ++k) {
                    const int ax = s.unitAxis(k);
                    if (ax >= 0)
                        pcol.e[ax] += out[(vi + k) * nv + j];
                    else
                        pcol += broadcastScaled(s.col(k),
                                                out[(vi + k) * nv + j]);
                }
                if (lam != -1)
                    pcol += xp;
                for (int a = 0; a < 6; ++a)
                    pm[j * 6 + a] = pcol.e[a];
            }
        }
        for (int r = 0; r < nv; ++r)
            for (int c = r + 1; c < nv; ++c)
                out[c * nv + r] = out[r * nv + c];
    }
}

// -------------------------------------------------------------- ∆RNEA

/**
 * Mirror of the scalar rneaDerivatives() (reuse_transforms form),
 * restructured column-by-column: the scalar sweeps iterate links
 * outer / columns inner, but distinct columns' cell chains never
 * interact, so running one column's forward propagation, force
 * Jacobians and backward accumulation end-to-end touches only ~nb
 * contiguous cells (L1-resident) instead of streaming the whole
 * nb*nv cell arena through every pass. Each individual value still
 * sees the exact scalar op sequence — the link-level v/a/f state is
 * hoisted into a prologue whose values the interleaved scalar code
 * computes identically, and all per-cell writes are column-local.
 */
template <int W>
void
rneaDerivSweep(const RobotModel &robot, DynamicsWorkspace &ws,
               LaneArena<W> &la, const Pack<W> *qd, const Pack<W> *qdd,
               const ColumnPlan *plan = nullptr)
{
    (void)ws;
    const int nb = robot.nb();
    const int nv = robot.nv();
    const bool gated = plan != nullptr && !plan->dense();

    // res.dtau_dq.resize(nv, nv) re-zeroes everything in the scalar
    // code; entries of unrelated (row, col) pairs are never written.
    // Gated: only live columns are re-zeroed (and later computed);
    // dead columns keep stale arena values that nothing downstream
    // reads — the masked consumers below only touch live columns.
    if (gated) {
        for (int col : plan->cols())
            for (int r = 0; r < nv; ++r) {
                la.dtq[r * nv + col] = Pack<W>::zero();
                la.dtqd[r * nv + col] = Pack<W>::zero();
            }
    } else {
        for (int i = 0; i < nv * nv; ++i) {
            la.dtq[i] = Pack<W>::zero();
            la.dtqd[i] = Pack<W>::zero();
        }
    }

    // ---- link-level prologue: v, a, f and the vc/ac/vj temporaries
    // of the scalar forward pass ----
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        la.vj[i] = applySegment(s, qd + vi);
        const PVec6<W> aj = applySegment(s, qdd + vi);
        const int vj_ax = ni == 1 ? s.unitAxis(0) : -1;

        la.vc[i] = lam == -1 ? la.xf[i].applyMotion(PVec6<W>::zero())
                             : la.xf[i].applyMotion(la.v[lam]);
        la.ac[i] = lam == -1
                       ? la.xf[i].applyMotionBroadcast(robot.gravity())
                       : la.xf[i].applyMotion(la.a[lam]);
        la.v[i] = la.vc[i] + la.vj[i];
        la.a[i] =
            la.ac[i] + aj +
            (vj_ax >= 0 ? crossMotionUnitScaled(la.v[i], vj_ax, qd[vi])
                        : crossMotion(la.v[i], la.vj[i]));
        const auto &inertia = robot.link(i).inertia;
        la.iv[i] = inertiaApply(inertia, la.v[i]);
        la.f[i] = inertiaApply(inertia, la.a[i]) +
                  crossForce(la.v[i], la.iv[i]);
    }
    // The f transfers of the scalar backward pass, hoisted: they are
    // the only writes to f (same child→parent order descending), and
    // every cell op below reads f values that are final either way.
    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        if (lam != -1)
            la.f[lam] += la.xf[i].applyTransposeForce(la.f[i]);
    }

    // ---- per-column fused forward + force-Jacobian + backward ----
    // Columns never interact, so the gated sweep simply visits the
    // live subset: each visited column runs the identical chain.
    const int live_cols = gated ? plan->liveCount() : nv;
    for (int n = 0; n < live_cols; ++n) {
        const int col = gated ? plan->cols()[static_cast<std::size_t>(n)] : n;
        const int jc = la.col_link[col];
        PDerivCell<W> *cells =
            &la.dcells[static_cast<std::size_t>(col) * nb];

        // Forward over owner + descendants, ascending.
        for (int i : la.col_desc[col]) {
            const int lam = robot.parent(i);
            const auto &s = robot.subspace(i);
            const int ni = s.nv();
            const int vi = robot.link(i).vIndex;
            const int vj_ax = ni == 1 ? s.unitAxis(0) : -1;
            const auto crossVj = [&](const PVec6<W> &x) {
                return vj_ax >= 0
                           ? crossMotionUnitScaled(x, vj_ax, qd[vi])
                           : crossMotion(x, la.vj[i]);
            };
            PDerivCell<W> &cc = cells[i];
            if (i == jc) {
                const int k = col - vi;
                const Vec6 sk = s.col(k);
                const int sk_ax = s.unitAxis(k);
                const PVec6<W> dvq =
                    sk_ax >= 0 ? crossMotionUnit(la.vc[i], sk_ax)
                               : crossMotion(la.vc[i], sk);
                cc.dv_dq = dvq;
                cc.dv_dqd = PVec6<W>::broadcast(sk);
                cc.da_dq = (sk_ax >= 0 ? crossMotionUnit(la.ac[i], sk_ax)
                                       : crossMotion(la.ac[i], sk)) +
                           crossVj(dvq);
                cc.da_dqd = crossMotion(sk, la.vj[i]) +
                            (sk_ax >= 0 ? crossMotionUnit(la.v[i], sk_ax)
                                        : crossMotion(la.v[i], sk));
            } else {
                const PDerivCell<W> &pc = cells[lam];
                const PVec6<W> dvq = la.xf[i].applyMotion(pc.dv_dq);
                const PVec6<W> dvqd = la.xf[i].applyMotion(pc.dv_dqd);
                cc.dv_dq = dvq;
                cc.dv_dqd = dvqd;
                cc.da_dq = la.xf[i].applyMotion(pc.da_dq) + crossVj(dvq);
                cc.da_dqd =
                    la.xf[i].applyMotion(pc.da_dqd) + crossVj(dvqd);
            }
            const auto &inertia = robot.link(i).inertia;
            const PVec6<W> &iv = la.iv[i];
            cc.df_dq =
                inertiaApply(inertia, cc.da_dq) +
                crossForce(cc.dv_dq, iv) +
                crossForce(la.v[i], inertiaApply(inertia, cc.dv_dq));
            cc.df_dqd =
                inertiaApply(inertia, cc.da_dqd) +
                crossForce(cc.dv_dqd, iv) +
                crossForce(la.v[i], inertiaApply(inertia, cc.dv_dqd));
        }
        // Strict ancestors only accumulate backward transfers: start
        // from zero (the scalar re-zero of df at related columns).
        for (int i : la.col_anc[col]) {
            cells[i].df_dq = PVec6<W>::zero();
            cells[i].df_dqd = PVec6<W>::zero();
        }

        // Backward over all related links, descending (descendants
        // all index above ancestors, so reverse each list in turn).
        const auto backward = [&](int i) {
            const int lam = robot.parent(i);
            const auto &s = robot.subspace(i);
            const int ni = s.nv();
            const int vi = robot.link(i).vIndex;
            PDerivCell<W> &cc = cells[i];
            for (int r = 0; r < ni; ++r) {
                const int ax = s.unitAxis(r);
                if (ax >= 0) {
                    la.dtq[(vi + r) * nv + col] = cc.df_dq.e[ax];
                    la.dtqd[(vi + r) * nv + col] = cc.df_dqd.e[ax];
                } else {
                    la.dtq[(vi + r) * nv + col] =
                        dotBroadcast(s.col(r), cc.df_dq);
                    la.dtqd[(vi + r) * nv + col] =
                        dotBroadcast(s.col(r), cc.df_dqd);
                }
            }
            if (lam != -1) {
                PDerivCell<W> &pc = cells[lam];
                PVec6<W> dq_col = cc.df_dq;
                if (col >= vi && col < vi + ni)
                    dq_col += crossForce(s.col(col - vi), la.f[i]);
                pc.df_dq += la.xf[i].applyTransposeForce(dq_col);
                pc.df_dqd += la.xf[i].applyTransposeForce(cc.df_dqd);
            }
        };
        for (auto it = la.col_desc[col].rbegin();
             it != la.col_desc[col].rend(); ++it)
            backward(*it);
        for (auto it = la.col_anc[col].rbegin();
             it != la.col_anc[col].rend(); ++it)
            backward(*it);
    }
}

// -------------------------------------------------- joint-space algebra

/** Mirror of MatrixX::multiplyInto(VectorX): out = m · x. */
template <int W>
void
mulVecInto(const Pack<W> *m, const Pack<W> *x, Pack<W> *out, int n)
{
    for (int i = 0; i < n; ++i) {
        Pack<W> s = Pack<W>::zero();
        for (int j = 0; j < n; ++j)
            s += m[i * n + j] * x[j];
        out[i] = s;
    }
}

/**
 * Mirror of out = -(m · o) via MatrixX::multiplyInto + negate():
 * the zero-skip on m's entries runs per lane (addUnlessZero).
 */
template <int W>
void
mulMatNegInto(const Pack<W> *m, const Pack<W> *o, Pack<W> *out, int n)
{
    for (int i = 0; i < n * n; ++i)
        out[i] = Pack<W>::zero();
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const Pack<W> a = m[i * n + j];
            if (!anyZero(a)) {
                for (int k = 0; k < n; ++k)
                    out[i * n + k] += a * o[j * n + k];
            } else {
                for (int k = 0; k < n; ++k)
                    addUnlessZero(out[i * n + k], a, a * o[j * n + k]);
            }
        }
    }
    for (int i = 0; i < n * n; ++i)
        out[i] = -out[i];
}

/**
 * Column-gated mulMatNegInto: only the listed columns of @p out are
 * zeroed, accumulated and negated — the same per-column op sequence
 * as the dense product (and as the scalar multiplyColsInto +
 * negateCols), so live columns match it bitwise. Dead columns of
 * @p out keep stale arena values the masked scatter never reads.
 */
template <int W>
void
mulMatNegIntoCols(const Pack<W> *m, const Pack<W> *o, Pack<W> *out, int n,
                  const int *cols, int ncols)
{
    for (int i = 0; i < n; ++i)
        for (int c = 0; c < ncols; ++c)
            out[i * n + cols[c]] = Pack<W>::zero();
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const Pack<W> a = m[i * n + j];
            if (!anyZero(a)) {
                for (int c = 0; c < ncols; ++c) {
                    const int k = cols[c];
                    out[i * n + k] += a * o[j * n + k];
                }
            } else {
                for (int c = 0; c < ncols; ++c) {
                    const int k = cols[c];
                    addUnlessZero(out[i * n + k], a, a * o[j * n + k]);
                }
            }
        }
    }
    for (int i = 0; i < n; ++i)
        for (int c = 0; c < ncols; ++c) {
            Pack<W> &v = out[i * n + cols[c]];
            v = -v;
        }
}

// ----------------------------------------------------------- kernels

template <int W>
void
fdImpl(const RobotModel &robot, DynamicsWorkspace &ws, const LaneBatch &in,
       VectorX *const *qdd_out)
{
    LaneArena<W> &la = arenaFor<W>(ws, robot);
    const Lanes<W> ln = resolveLanes<W>(in);
    const int nv = robot.nv();

    gatherPacks(la.q.data(), ln.q, robot.nq());
    gatherPacks(la.qd.data(), ln.qd, nv);
    gatherPacks(la.tau.data(), ln.tau, nv);
    gatherTransforms(robot, la, ln);

    // Steps ①②③ of the scalar forwardDynamics (MMinvGen route).
    rneaSweep(robot, la, la.qd.data(), static_cast<const Pack<W> *>(nullptr),
              la.rv.data(), la.ra.data(),
              la.rf.data(), la.bias.data());
    minvCore(robot, ws, la, false, true, la.jsout.data());
    for (int i = 0; i < nv; ++i)
        la.tmp[i] = la.tau[i] - la.bias[i];
    mulVecInto(la.jsout.data(), la.tmp.data(), la.qddp.data(), nv);

    scatterVector(la.qddp.data(), nv, ln, qdd_out);
}

template <int W>
void
fdDerivImpl(const RobotModel &robot, DynamicsWorkspace &ws,
            const LaneBatch &in, FdDerivatives *const *out,
            const ColumnPlan *plan)
{
    LaneArena<W> &la = arenaFor<W>(ws, robot);
    const Lanes<W> ln = resolveLanes<W>(in);
    const int nv = robot.nv();
    const bool gated = plan != nullptr && !plan->dense();

    gatherPacks(la.q.data(), ln.q, robot.nq());
    gatherPacks(la.qd.data(), ln.qd, nv);
    gatherPacks(la.tau.data(), ln.tau, nv);
    gatherTransforms(robot, la, ln);

    // Steps ① - ⑥ of the scalar fdDerivatives. ①②③ (q̈, M⁻¹) are
    // always dense; ④⑤⑥ gate on the column plan.
    rneaSweep(robot, la, la.qd.data(), static_cast<const Pack<W> *>(nullptr),
              la.rv.data(), la.ra.data(),
              la.rf.data(), la.bias.data());
    minvCore(robot, ws, la, false, true, la.jsout.data());
    for (int i = 0; i < nv; ++i)
        la.tmp[i] = la.tau[i] - la.bias[i];
    mulVecInto(la.jsout.data(), la.tmp.data(), la.qddp.data(), nv);
    rneaDerivSweep(robot, ws, la, la.qd.data(), la.qddp.data(), plan);
    if (gated) {
        const int *cols = plan->cols().data();
        const int ncols = plan->liveCount();
        mulMatNegIntoCols(la.jsout.data(), la.dtq.data(), la.dqq.data(),
                          nv, cols, ncols);
        mulMatNegIntoCols(la.jsout.data(), la.dtqd.data(), la.dqqd.data(),
                          nv, cols, ncols);
    } else {
        mulMatNegInto(la.jsout.data(), la.dtq.data(), la.dqq.data(), nv);
        mulMatNegInto(la.jsout.data(), la.dtqd.data(), la.dqqd.data(), nv);
    }

    for (int l = 0; l < W; ++l) {
        if (!ln.active[l])
            continue;
        FdDerivatives &o = *out[l];
        o.qdd.resize(nv);
        for (int j = 0; j < nv; ++j)
            o.qdd[j] = la.qddp[j].l[l];
        if (gated) {
            scatterMatrixLaneCols(la.dqq.data(), nv, nv, l, o.dqdd_dq,
                                  *plan);
            scatterMatrixLaneCols(la.dqqd.data(), nv, nv, l, o.dqdd_dqd,
                                  *plan);
        } else {
            scatterMatrixLane(la.dqq.data(), nv, nv, l, o.dqdd_dq);
            scatterMatrixLane(la.dqqd.data(), nv, nv, l, o.dqdd_dqd);
        }
        scatterMatrixLane(la.jsout.data(), nv, nv, l, o.minv);
    }
}

template <int W>
void
fdGivenAccelImpl(const RobotModel &robot, DynamicsWorkspace &ws,
                 const LaneBatch &in, FdDerivatives *const *out,
                 const ColumnPlan *plan)
{
    LaneArena<W> &la = arenaFor<W>(ws, robot);
    const Lanes<W> ln = resolveLanes<W>(in);
    const int nv = robot.nv();
    const bool gated = plan != nullptr && !plan->dense();

    gatherPacks(la.q.data(), ln.q, robot.nq());
    gatherPacks(la.qd.data(), ln.qd, nv);
    gatherPacks(la.qddp.data(), ln.qdd, nv);
    gatherMatrixPacks(la.jsout.data(), ln.minv, nv);
    gatherTransforms(robot, la, ln);

    // Steps ④⑤⑥ only — q̈ and M⁻¹ arrive as inputs (the scalar
    // fdDerivativesGivenAccel contract), so the dense ①②③ prefix
    // is skipped and a gated pack's cost scales with the live
    // column count alone.
    rneaDerivSweep(robot, ws, la, la.qd.data(), la.qddp.data(), plan);
    if (gated) {
        const int *cols = plan->cols().data();
        const int ncols = plan->liveCount();
        mulMatNegIntoCols(la.jsout.data(), la.dtq.data(), la.dqq.data(),
                          nv, cols, ncols);
        mulMatNegIntoCols(la.jsout.data(), la.dtqd.data(), la.dqqd.data(),
                          nv, cols, ncols);
    } else {
        mulMatNegInto(la.jsout.data(), la.dtq.data(), la.dqq.data(), nv);
        mulMatNegInto(la.jsout.data(), la.dtqd.data(), la.dqqd.data(), nv);
    }

    for (int l = 0; l < W; ++l) {
        if (!ln.active[l])
            continue;
        FdDerivatives &o = *out[l];
        o.qdd = *ln.qdd[l];
        o.minv = *ln.minv[l];
        if (gated) {
            scatterMatrixLaneCols(la.dqq.data(), nv, nv, l, o.dqdd_dq,
                                  *plan);
            scatterMatrixLaneCols(la.dqqd.data(), nv, nv, l, o.dqdd_dqd,
                                  *plan);
        } else {
            scatterMatrixLane(la.dqq.data(), nv, nv, l, o.dqdd_dq);
            scatterMatrixLane(la.dqqd.data(), nv, nv, l, o.dqdd_dqd);
        }
    }
}

template <int W>
void
minvImpl(const RobotModel &robot, DynamicsWorkspace &ws, const LaneBatch &in,
         MatrixX *const *minv_out)
{
    LaneArena<W> &la = arenaFor<W>(ws, robot);
    const Lanes<W> ln = resolveLanes<W>(in);
    const int nv = robot.nv();

    gatherPacks(la.q.data(), ln.q, robot.nq());
    gatherTransforms(robot, la, ln);
    minvCore(robot, ws, la, false, true, la.jsout.data());

    for (int l = 0; l < W; ++l)
        if (ln.active[l])
            scatterMatrixLane(la.jsout.data(), nv, nv, l, *minv_out[l]);
}

template <int W>
void
abaImpl(const RobotModel &robot, DynamicsWorkspace &ws, const LaneBatch &in,
        VectorX *const *qdd_out)
{
    LaneArena<W> &la = arenaFor<W>(ws, robot);
    const Lanes<W> ln = resolveLanes<W>(in);
    const int nb = robot.nb();
    const int nv = robot.nv();

    gatherPacks(la.q.data(), ln.q, robot.nq());
    gatherPacks(la.qd.data(), ln.qd, nv);
    gatherPacks(la.tau.data(), ln.tau, nv);
    gatherTransforms(robot, la, ln);

    // Pass 1: velocities and bias terms.
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const PVec6<W> vj =
            applySegment(s, la.qd.data() + robot.link(i).vIndex);
        const PVec6<W> vparent =
            lam == -1 ? PVec6<W>::zero() : la.v[lam];
        la.v[i] = la.xf[i].applyMotion(vparent) + vj;
        la.c[i] = crossMotion(la.v[i], vj);
        la.ia[i] = PMat66<W>::broadcast(robot.link(i).inertia.toMatrix());
        la.pa[i] = crossForce(la.v[i],
                              inertiaApply(robot.link(i).inertia, la.v[i]));
    }

    // Pass 2: articulated-body inertias, backward.
    for (int i = nb - 1; i >= 0; --i) {
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        PVec6<W> *ucols = &la.ucols[static_cast<std::size_t>(i) * 6];
        Pack<W> *dinv = &la.dinv[static_cast<std::size_t>(i) * 36];
        Pack<W> *uvec = &la.uvec[static_cast<std::size_t>(i) * 6];

        for (int k = 0; k < ni; ++k) {
            const int ax = s.unitAxis(k);
            if (ax >= 0) {
                for (int a = 0; a < 6; ++a)
                    ucols[k].e[a] = la.ia[i](a, ax);
            } else {
                ucols[k] = la.ia[i].mulBroadcast(s.col(k));
            }
        }

        Pack<W> d[36];
        for (int r = 0; r < ni; ++r) {
            const int ax = s.unitAxis(r);
            for (int k = 0; k < ni; ++k)
                d[r * ni + k] = ax >= 0
                                    ? ucols[k].e[ax]
                                    : dotBroadcast(s.col(r), ucols[k]);
        }
        if (ni == 1) {
            dinv[0] = 1.0 / d[0];
        } else {
            la.ldlt.compute(d, ni);
            la.ldlt.inverseInto(dinv);
        }

        for (int k = 0; k < ni; ++k) {
            const int ax = s.unitAxis(k);
            uvec[k] = la.tau[vi + k] -
                      (ax >= 0 ? la.pa[i].e[ax]
                               : dotBroadcast(s.col(k), la.pa[i]));
        }

        const int lam = robot.parent(i);
        if (lam == -1)
            continue;

        PMat66<W> ia_articulated = la.ia[i];
        for (int r = 0; r < ni; ++r) {
            for (int k = 0; k < ni; ++k) {
                const Pack<W> dk = dinv[r * ni + k];
                for (int a = 0; a < 6; ++a)
                    for (int b = 0; b < 6; ++b)
                        subUnlessZero(ia_articulated(a, b), dk,
                                      dk * ucols[r].e[a] * ucols[k].e[b]);
            }
        }
        PVec6<W> pa_articulated = la.pa[i] + ia_articulated * la.c[i];
        for (int r = 0; r < ni; ++r) {
            Pack<W> coef = Pack<W>::zero();
            for (int k = 0; k < ni; ++k)
                coef += dinv[r * ni + k] * uvec[k];
            pa_articulated += ucols[r] * coef;
        }

        const PMat66<W> xm = la.xf[i].toMatrix();
        la.ia[lam] += xm.transposeMul(ia_articulated) * xm;
        la.pa[lam] += la.xf[i].applyTransposeForce(pa_articulated);
    }

    // Pass 3: accelerations, forward.
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        const PVec6<W> *ucols = &la.ucols[static_cast<std::size_t>(i) * 6];
        const Pack<W> *dinv = &la.dinv[static_cast<std::size_t>(i) * 36];
        const Pack<W> *uvec = &la.uvec[static_cast<std::size_t>(i) * 6];

        const PVec6<W> aprime =
            (lam == -1 ? la.xf[i].applyMotionBroadcast(robot.gravity())
                       : la.xf[i].applyMotion(la.a[lam])) +
            la.c[i];

        Pack<W> rhs[6];
        for (int k = 0; k < ni; ++k)
            rhs[k] = uvec[k] - ucols[k].dot(aprime);
        la.a[i] = aprime;
        for (int r = 0; r < ni; ++r) {
            Pack<W> qdd_r = Pack<W>::zero();
            for (int k = 0; k < ni; ++k)
                qdd_r += dinv[r * ni + k] * rhs[k];
            la.qddp[vi + r] = qdd_r;
            la.a[i] += broadcastScaled(s.col(r), qdd_r);
        }
    }

    scatterVector(la.qddp.data(), nv, ln, qdd_out);
}

template <int W>
void
rneaImpl(const RobotModel &robot, DynamicsWorkspace &ws, const LaneBatch &in,
         VectorX *const *tau_out)
{
    LaneArena<W> &la = arenaFor<W>(ws, robot);
    const Lanes<W> ln = resolveLanes<W>(in);
    const int nv = robot.nv();

    gatherPacks(la.q.data(), ln.q, robot.nq());
    gatherPacks(la.qd.data(), ln.qd, nv);
    gatherPacks(la.qddp.data(), ln.qdd, nv);
    gatherTransforms(robot, la, ln);

    rneaSweep(robot, la, la.qd.data(), la.qddp.data(), la.rv.data(),
              la.ra.data(), la.rf.data(), la.bias.data());

    scatterVector(la.bias.data(), nv, ln, tau_out);
}

template <int W>
void
crbaImpl(const RobotModel &robot, DynamicsWorkspace &ws, const LaneBatch &in,
         MatrixX *const *m_out)
{
    LaneArena<W> &la = arenaFor<W>(ws, robot);
    const Lanes<W> ln = resolveLanes<W>(in);
    const int nb = robot.nb();
    const int nv = robot.nv();
    Pack<W> *m = la.jsout.data();

    gatherPacks(la.q.data(), ln.q, robot.nq());
    gatherTransforms(robot, la, ln);

    // m.resize(nv, nv) re-zeroes every entry in the scalar code.
    for (int i = 0; i < nv * nv; ++i)
        m[i] = Pack<W>::zero();

    for (int i = 0; i < nb; ++i)
        la.ic[i] =
            PMat66<W>::broadcast(robot.link(i).inertia.toMatrix());

    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        if (lam != -1) {
            // Mirror of ArticulatedInertia::transformToParent
            // (congruence + symmetry re-imposition).
            const PMat66<W> xm = la.xf[i].toMatrix();
            PMat66<W> y = xm.transposeMul(la.ic[i]) * xm;
            for (int r = 0; r < 6; ++r) {
                for (int c = r + 1; c < 6; ++c) {
                    const Pack<W> avg = 0.5 * (y(r, c) + y(c, r));
                    y(r, c) = avg;
                    y(c, r) = avg;
                }
            }
            la.ic[lam] += y;
        }

        const auto &si = robot.subspace(i);
        const int vi = robot.link(i).vIndex;

        PVec6<W> fcols[6];
        for (int c = 0; c < si.nv(); ++c) {
            const int ax = si.unitAxis(c);
            if (ax >= 0) {
                for (int a = 0; a < 6; ++a)
                    fcols[c].e[a] = la.ic[i](a, ax);
            } else {
                fcols[c] = la.ic[i].mulBroadcast(si.col(c));
            }
        }

        for (int c = 0; c < si.nv(); ++c)
            for (int r = 0; r < si.nv(); ++r) {
                const int ax = si.unitAxis(r);
                m[(vi + r) * nv + (vi + c)] =
                    ax >= 0 ? fcols[c].e[ax]
                            : dotBroadcast(si.col(r), fcols[c]);
            }

        int j = i;
        while (robot.parent(j) != -1) {
            for (int c = 0; c < si.nv(); ++c)
                fcols[c] = la.xf[j].applyTransposeForce(fcols[c]);
            j = robot.parent(j);
            const auto &sj = robot.subspace(j);
            const int vj = robot.link(j).vIndex;
            for (int c = 0; c < si.nv(); ++c) {
                for (int r = 0; r < sj.nv(); ++r) {
                    const int ax = sj.unitAxis(r);
                    const Pack<W> val =
                        ax >= 0 ? fcols[c].e[ax]
                                : dotBroadcast(sj.col(r), fcols[c]);
                    m[(vj + r) * nv + (vi + c)] = val;
                    m[(vi + c) * nv + (vj + r)] = val;
                }
            }
        }
    }

    for (int l = 0; l < W; ++l)
        if (ln.active[l])
            scatterMatrixLane(m, nv, nv, l, *m_out[l]);
}

/** Width dispatch shared by every public entry point. */
template <template <int> class Unused, typename Fn4, typename Fn8,
          typename Fn16>
void
dispatchWidth(int width, Fn4 &&f4, Fn8 &&f8, Fn16 &&f16)
{
    switch (width) {
      case 4:
        f4();
        break;
      case 8:
        f8();
        break;
      case 16:
        f16();
        break;
      default:
        assert(false && "unsupported SoA lane width");
        break;
    }
}

} // namespace

bool
laneWidthSupported(int w)
{
    return w == 4 || w == 8 || w == 16;
}

int
defaultLaneWidth()
{
    if (const char *env = std::getenv("DADU_LANE_WIDTH")) {
        const int w = std::atoi(env);
        if (w == 1 || laneWidthSupported(w))
            return w;
    }
    return 8;
}

void
packForwardDynamics(const RobotModel &robot, DynamicsWorkspace &ws,
                    int width, const LaneBatch &in, VectorX *const *qdd_out)
{
    dispatchWidth<LaneArena>(
        width, [&] { fdImpl<4>(robot, ws, in, qdd_out); },
        [&] { fdImpl<8>(robot, ws, in, qdd_out); },
        [&] { fdImpl<16>(robot, ws, in, qdd_out); });
}

void
packFdDerivatives(const RobotModel &robot, DynamicsWorkspace &ws, int width,
                  const LaneBatch &in, FdDerivatives *const *out,
                  const ColumnPlan *plan)
{
    dispatchWidth<LaneArena>(
        width, [&] { fdDerivImpl<4>(robot, ws, in, out, plan); },
        [&] { fdDerivImpl<8>(robot, ws, in, out, plan); },
        [&] { fdDerivImpl<16>(robot, ws, in, out, plan); });
}

void
packFdGivenAccel(const RobotModel &robot, DynamicsWorkspace &ws, int width,
                 const LaneBatch &in, FdDerivatives *const *out,
                 const ColumnPlan *plan)
{
    dispatchWidth<LaneArena>(
        width, [&] { fdGivenAccelImpl<4>(robot, ws, in, out, plan); },
        [&] { fdGivenAccelImpl<8>(robot, ws, in, out, plan); },
        [&] { fdGivenAccelImpl<16>(robot, ws, in, out, plan); });
}

void
packMinv(const RobotModel &robot, DynamicsWorkspace &ws, int width,
         const LaneBatch &in, MatrixX *const *minv_out)
{
    dispatchWidth<LaneArena>(
        width, [&] { minvImpl<4>(robot, ws, in, minv_out); },
        [&] { minvImpl<8>(robot, ws, in, minv_out); },
        [&] { minvImpl<16>(robot, ws, in, minv_out); });
}

void
packAba(const RobotModel &robot, DynamicsWorkspace &ws, int width,
        const LaneBatch &in, VectorX *const *qdd_out)
{
    dispatchWidth<LaneArena>(
        width, [&] { abaImpl<4>(robot, ws, in, qdd_out); },
        [&] { abaImpl<8>(robot, ws, in, qdd_out); },
        [&] { abaImpl<16>(robot, ws, in, qdd_out); });
}

void
packRnea(const RobotModel &robot, DynamicsWorkspace &ws, int width,
         const LaneBatch &in, VectorX *const *tau_out)
{
    dispatchWidth<LaneArena>(
        width, [&] { rneaImpl<4>(robot, ws, in, tau_out); },
        [&] { rneaImpl<8>(robot, ws, in, tau_out); },
        [&] { rneaImpl<16>(robot, ws, in, tau_out); });
}

void
packCrba(const RobotModel &robot, DynamicsWorkspace &ws, int width,
         const LaneBatch &in, MatrixX *const *m_out)
{
    dispatchWidth<LaneArena>(
        width, [&] { crbaImpl<4>(robot, ws, in, m_out); },
        [&] { crbaImpl<8>(robot, ws, in, m_out); },
        [&] { crbaImpl<16>(robot, ws, in, m_out); });
}

} // namespace dadu::algo::soa
