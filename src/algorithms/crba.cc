#include "algorithms/crba.h"

#include <vector>

#include "spatial/inertia.h"
#include "spatial/transform.h"

namespace dadu::algo {

using spatial::ArticulatedInertia;
using spatial::SpatialTransform;

MatrixX
crba(const RobotModel &robot, const VectorX &q)
{
    const int nb = robot.nb();
    const int nv = robot.nv();
    MatrixX m(nv, nv);

    std::vector<SpatialTransform> xup(nb);
    std::vector<ArticulatedInertia> ic(nb);
    for (int i = 0; i < nb; ++i) {
        xup[i] = robot.linkTransform(i, q);
        ic[i] = ArticulatedInertia(robot.link(i).inertia);
    }

    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        if (lam != -1)
            ic[lam] += ic[i].transformToParent(xup[i]);

        const auto &si = robot.subspace(i);
        const int vi = robot.link(i).vIndex;

        // F = I^C_i S_i, one spatial force column per DOF of joint i.
        std::vector<linalg::Vec6> fcols(si.nv());
        for (int c = 0; c < si.nv(); ++c)
            fcols[c] = ic[i].apply(si.col(c));

        for (int c = 0; c < si.nv(); ++c)
            for (int r = 0; r < si.nv(); ++r)
                m(vi + r, vi + c) = si.col(r).dot(fcols[c]);

        // Walk up to the root, transforming the force columns and
        // projecting onto each ancestor's motion subspace.
        int j = i;
        while (robot.parent(j) != -1) {
            for (int c = 0; c < si.nv(); ++c)
                fcols[c] = xup[j].applyTransposeForce(fcols[c]);
            j = robot.parent(j);
            const auto &sj = robot.subspace(j);
            const int vj = robot.link(j).vIndex;
            for (int c = 0; c < si.nv(); ++c) {
                for (int r = 0; r < sj.nv(); ++r) {
                    const double val = sj.col(r).dot(fcols[c]);
                    m(vj + r, vi + c) = val;
                    m(vi + c, vj + r) = val;
                }
            }
        }
    }
    return m;
}

} // namespace dadu::algo
