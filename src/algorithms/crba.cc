#include "algorithms/crba.h"

#include <vector>

#include "algorithms/workspace.h"
#include "spatial/inertia.h"
#include "spatial/transform.h"

namespace dadu::algo {

using spatial::ArticulatedInertia;
using spatial::SpatialTransform;

MatrixX
crba(const RobotModel &robot, const VectorX &q)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    MatrixX m;
    crba(robot, ws, q, m);
    return m;
}

void
crba(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
     MatrixX &m)
{
    ws.ensure(robot);
    const int nb = robot.nb();
    const int nv = robot.nv();
    m.resize(nv, nv); // zeroes while reusing capacity

    for (int i = 0; i < nb; ++i) {
        ws.xup[i] = robot.linkTransform(i, q);
        ws.ic[i] = ArticulatedInertia(robot.link(i).inertia);
    }

    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        if (lam != -1)
            ws.ic[lam] += ws.ic[i].transformToParent(ws.xup[i]);

        const auto &si = robot.subspace(i);
        const int vi = robot.link(i).vIndex;

        // F = I^C_i S_i, one spatial force column per DOF of joint i.
        // One-hot subspace columns read I^C columns directly.
        linalg::Vec6 fcols[6];
        for (int c = 0; c < si.nv(); ++c) {
            const int ax = si.unitAxis(c);
            if (ax >= 0) {
                for (int a = 0; a < 6; ++a)
                    fcols[c][a] = ws.ic[i].matrix()(a, ax);
            } else {
                fcols[c] = ws.ic[i].apply(si.col(c));
            }
        }

        for (int c = 0; c < si.nv(); ++c)
            for (int r = 0; r < si.nv(); ++r) {
                const int ax = si.unitAxis(r);
                m(vi + r, vi + c) =
                    ax >= 0 ? fcols[c][ax] : si.col(r).dot(fcols[c]);
            }

        // Walk up to the root, transforming the force columns and
        // projecting onto each ancestor's motion subspace.
        int j = i;
        while (robot.parent(j) != -1) {
            for (int c = 0; c < si.nv(); ++c)
                fcols[c] = ws.xup[j].applyTransposeForce(fcols[c]);
            j = robot.parent(j);
            const auto &sj = robot.subspace(j);
            const int vj = robot.link(j).vIndex;
            for (int c = 0; c < si.nv(); ++c) {
                for (int r = 0; r < sj.nv(); ++r) {
                    const int ax = sj.unitAxis(r);
                    const double val =
                        ax >= 0 ? fcols[c][ax] : sj.col(r).dot(fcols[c]);
                    m(vj + r, vi + c) = val;
                    m(vi + c, vj + r) = val;
                }
            }
        }
    }
}

} // namespace dadu::algo
