#include "algorithms/col_gating.h"

#include <algorithm>

namespace dadu::algo {

const char *
gatingModeName(GatingMode mode)
{
    switch (mode) {
    case GatingMode::None:
        return "none";
    case GatingMode::Simple:
        return "simple";
    case GatingMode::Adaptive:
        return "adaptive";
    }
    return "?";
}

bool
seedValid(const std::vector<int> &seed, int nv)
{
    for (std::size_t i = 0; i < seed.size(); ++i) {
        if (seed[i] < 0 || seed[i] >= nv)
            return false;
        for (std::size_t j = 0; j < i; ++j)
            if (seed[j] == seed[i])
                return false;
    }
    return true;
}

int
gatedLiveCount(GatingMode mode, const std::vector<int> &seed, int nv)
{
    if (mode == GatingMode::None || seed.empty())
        return nv;
    int live = static_cast<int>(seed.size());
    if (mode == GatingMode::Adaptive) {
        // A dead column is filled iff the nearest live columns below
        // and above it are ≤ kAdaptiveMaxGap + 1 apart. O(nv·k),
        // allocation-free — mirrors ColumnPlan::resolve exactly.
        for (int c = 0; c < nv; ++c) {
            int below = -1, above = nv;
            bool is_seed = false;
            for (int s : seed) {
                if (s == c) {
                    is_seed = true;
                    break;
                }
                if (s < c)
                    below = std::max(below, s);
                else
                    above = std::min(above, s);
            }
            if (!is_seed && below >= 0 && above < nv &&
                above - below - 1 <= kAdaptiveMaxGap)
                ++live;
        }
    }
    return std::min(live, nv);
}

bool
ColumnPlan::resolve(GatingMode mode, const std::vector<int> &seed, int nv)
{
    nv_ = nv;
    runs_ = 1;
    dense_ = true;
    cols_.clear();
    if (static_cast<int>(live_.size()) < nv)
        live_.resize(static_cast<std::size_t>(nv));
    std::fill(live_.begin(), live_.begin() + nv, 0);

    if (mode == GatingMode::None || seed.empty())
        return true;

    for (int c : seed) {
        if (c < 0 || c >= nv) {
            std::fill(live_.begin(), live_.begin() + nv, 0);
            return false;
        }
        if (live_[static_cast<std::size_t>(c)]) { // duplicate
            std::fill(live_.begin(), live_.begin() + nv, 0);
            return false;
        }
        live_[static_cast<std::size_t>(c)] = 1;
    }

    if (mode == GatingMode::Adaptive) {
        // Fill gaps ≤ kAdaptiveMaxGap between consecutive live
        // columns so nearby columns coalesce into one run.
        int prev = -1;
        for (int c = 0; c < nv; ++c) {
            if (!live_[static_cast<std::size_t>(c)])
                continue;
            if (prev >= 0 && c - prev - 1 <= kAdaptiveMaxGap)
                for (int f = prev + 1; f < c; ++f)
                    live_[static_cast<std::size_t>(f)] = 1;
            prev = c;
        }
    }

    int live_count = 0;
    for (int c = 0; c < nv; ++c)
        if (live_[static_cast<std::size_t>(c)])
            ++live_count;
    if (live_count == nv) // full coverage: dense after all
        return true;

    dense_ = false;
    runs_ = 0;
    for (int c = 0; c < nv; ++c) {
        if (!live_[static_cast<std::size_t>(c)])
            continue;
        if (cols_.empty() || cols_.back() != c - 1)
            ++runs_;
        cols_.push_back(c);
    }
    return true;
}

} // namespace dadu::algo
