#include "algorithms/kinematics.h"

#include "spatial/cross.h"

namespace dadu::algo {

std::vector<SpatialTransform>
forwardKinematics(const RobotModel &robot, const VectorX &q)
{
    std::vector<SpatialTransform> x(robot.nb());
    for (int i = 0; i < robot.nb(); ++i) {
        const SpatialTransform xup = robot.linkTransform(i, q);
        const int lam = robot.parent(i);
        x[i] = lam == -1 ? xup : xup * x[lam];
    }
    return x;
}

Vec3
linkPosition(const RobotModel &robot, const VectorX &q, int link)
{
    // ^iX_0 = rot(E)·xlt(r) with r the link origin in world frame.
    const auto x = forwardKinematics(robot, q);
    return x[link].translationPart();
}

MatrixX
bodyJacobian(const RobotModel &robot, const VectorX &q, int link)
{
    MatrixX j(6, robot.nv());
    const auto x = forwardKinematics(robot, q);
    // Column block of ancestor a: transform S_a's columns from a's
    // frame into link's frame: ^link X_0 · (^a X_0)^-1 applied to S_a.
    for (int a = link; a != -1; a = robot.parent(a)) {
        const SpatialTransform rel = x[link] * x[a].inverse();
        const auto &s = robot.subspace(a);
        const int va = robot.link(a).vIndex;
        for (int k = 0; k < s.nv(); ++k) {
            const linalg::Vec6 col = rel.applyMotion(s.col(k));
            for (int r = 0; r < 6; ++r)
                j(r, va + k) = col[r];
        }
    }
    return j;
}

linalg::Vec6
linkVelocity(const RobotModel &robot, const VectorX &q,
             const VectorX &qd, int link)
{
    linalg::Vec6 v;
    std::vector<linalg::Vec6> vs(link + 1);
    for (int i = 0; i <= link; ++i) {
        if (!robot.isAncestorOf(i, link))
            continue;
        const SpatialTransform xup = robot.linkTransform(i, q);
        const int lam = robot.parent(i);
        const linalg::Vec6 vparent =
            lam == -1 ? linalg::Vec6::zero() : vs[lam];
        vs[i] = xup.applyMotion(vparent) +
                robot.subspace(i).apply(robot.jointVelocity(i, qd));
    }
    v = vs[link];
    return v;
}

} // namespace dadu::algo
