#include "algorithms/batched.h"

#include <cassert>
#include <thread>

#include "algorithms/mminv_gen.h"
#include "algorithms/soa/kernels.h"

namespace dadu::algo {

namespace {

/**
 * Oversubscribing a CPU-bound batch never helps: clamp the requested
 * parallelism to the hardware thread count (min 1).
 */
int
clampThreads(int threads)
{
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw > 0 && threads > hw)
        threads = hw;
    return threads < 1 ? 1 : threads;
}

} // namespace

BatchedDynamics::BatchedDynamics(const RobotModel &robot, int threads)
    : BatchedDynamics(
          robot, std::make_shared<app::ThreadPool>(clampThreads(threads) - 1))
{}

BatchedDynamics::BatchedDynamics(const RobotModel &robot,
                                 std::shared_ptr<app::ThreadPool> pool)
    : robot_(robot), pool_(std::move(pool)),
      lane_width_(soa::defaultLaneWidth())
{
    // One workspace per chunk: pool workers plus the calling thread,
    // which participates in runIndexed().
    workspaces_.resize(static_cast<std::size_t>(pool_->threadCount()) + 1);
    for (auto &ws : workspaces_)
        ws.ensure(robot_);
}

void
BatchedDynamics::setLaneWidth(int w)
{
    if (w == 1 || soa::laneWidthSupported(w))
        lane_width_ = w;
}

void
BatchedDynamics::runChunk(void *ctx, int chunk)
{
    auto *self = static_cast<BatchedDynamics *>(ctx);
    const int chunks = self->workspaceCount();
    const int n = self->n_;
    const int begin = static_cast<int>(
        static_cast<long long>(chunk) * n / chunks);
    const int end = static_cast<int>(
        static_cast<long long>(chunk + 1) * n / chunks);
    DynamicsWorkspace &ws = self->workspaces_[chunk];

    // Pack full lane groups through the SoA kernels, then run the
    // ragged remainder through the scalar path. Both mirror the same
    // reference arithmetic, so where the split falls never changes a
    // point's bits.
    const int w = self->lane_width_;
    int i = begin;
    if (w > 1) {
        soa::LaneBatch lanes;
        lanes.mask = soa::LaneBatch::fullMask(w);
        VectorX *qdd_out[soa::kMaxLaneWidth];
        FdDerivatives *fd_out[soa::kMaxLaneWidth];
        linalg::MatrixX *minv_out[soa::kMaxLaneWidth];
        for (; i + w <= end; i += w) {
            for (int l = 0; l < w; ++l) {
                lanes.q[l] = &self->in_q_[i + l];
                switch (self->mode_) {
                  case Mode::Fd:
                    lanes.qd[l] = &self->in_qd_[i + l];
                    lanes.tau[l] = &self->in_tau_[i + l];
                    qdd_out[l] = &self->qdd_out_[i + l];
                    break;
                  case Mode::FdDerivatives:
                    lanes.qd[l] = &self->in_qd_[i + l];
                    lanes.tau[l] = &self->in_tau_[i + l];
                    fd_out[l] = &self->fd_out_[i + l];
                    break;
                  case Mode::FdGivenAccel:
                    lanes.qd[l] = &self->in_qd_[i + l];
                    lanes.qdd[l] = &self->in_tau_[i + l];
                    lanes.minv[l] = self->in_minv_[i + l];
                    fd_out[l] = &self->fd_out_[i + l];
                    break;
                  case Mode::Minv:
                    minv_out[l] = &self->minv_out_[i + l];
                    break;
                }
            }
            switch (self->mode_) {
              case Mode::Fd:
                soa::packForwardDynamics(self->robot_, ws, w, lanes,
                                         qdd_out);
                break;
              case Mode::FdDerivatives:
                soa::packFdDerivatives(self->robot_, ws, w, lanes, fd_out,
                                       self->in_plan_);
                break;
              case Mode::FdGivenAccel:
                soa::packFdGivenAccel(self->robot_, ws, w, lanes, fd_out,
                                      self->in_plan_);
                break;
              case Mode::Minv:
                soa::packMinv(self->robot_, ws, w, lanes, minv_out);
                break;
            }
        }
    }
    switch (self->mode_) {
      case Mode::Fd:
        for (; i < end; ++i)
            forwardDynamics(self->robot_, ws, self->in_q_[i],
                            self->in_qd_[i], self->in_tau_[i],
                            self->qdd_out_[i]);
        break;
      case Mode::FdDerivatives:
        for (; i < end; ++i)
            fdDerivatives(self->robot_, ws, self->in_q_[i],
                          self->in_qd_[i], self->in_tau_[i],
                          self->fd_out_[i], nullptr, self->in_plan_);
        break;
      case Mode::FdGivenAccel:
        for (; i < end; ++i)
            fdDerivativesGivenAccel(self->robot_, ws, self->in_q_[i],
                                    self->in_qd_[i], self->in_tau_[i],
                                    *self->in_minv_[i], self->fd_out_[i],
                                    nullptr, self->in_plan_);
        break;
      case Mode::Minv:
        for (; i < end; ++i)
            massMatrixInverse(self->robot_, ws, self->in_q_[i],
                              self->minv_out_[i]);
        break;
    }
}

void
BatchedDynamics::dispatch(Mode mode, const VectorX *q, const VectorX *qd,
                          const VectorX *tau, int n, const ColumnPlan *plan,
                          const linalg::MatrixX *const *minv)
{
    assert(!in_dispatch_.exchange(true) &&
           "BatchedDynamics: concurrent batch calls on one engine");
    mode_ = mode;
    n_ = n;
    in_q_ = q;
    in_qd_ = qd;
    in_tau_ = tau;
    in_plan_ = plan;
    in_minv_ = minv;
    pool_->runIndexed(&BatchedDynamics::runChunk, this, workspaceCount());
    in_q_ = in_qd_ = in_tau_ = nullptr;
    in_plan_ = nullptr;
    in_minv_ = nullptr;
    in_dispatch_.store(false);
}

const std::vector<VectorX> &
BatchedDynamics::batchForwardDynamics(const std::vector<VectorX> &q,
                                      const std::vector<VectorX> &qd,
                                      const std::vector<VectorX> &tau)
{
    assert(q.size() == qd.size() && q.size() == tau.size());
    return batchForwardDynamics(q.data(), qd.data(), tau.data(),
                                static_cast<int>(q.size()));
}

const std::vector<VectorX> &
BatchedDynamics::batchForwardDynamics(const VectorX *q, const VectorX *qd,
                                      const VectorX *tau, int n)
{
    if (static_cast<int>(qdd_out_.size()) < n)
        qdd_out_.resize(n);
    dispatch(Mode::Fd, q, qd, tau, n);
    return qdd_out_;
}

const std::vector<FdDerivatives> &
BatchedDynamics::batchFdDerivatives(const std::vector<VectorX> &q,
                                    const std::vector<VectorX> &qd,
                                    const std::vector<VectorX> &tau,
                                    const ColumnPlan *plan)
{
    assert(q.size() == qd.size() && q.size() == tau.size());
    return batchFdDerivatives(q.data(), qd.data(), tau.data(),
                              static_cast<int>(q.size()), plan);
}

const std::vector<FdDerivatives> &
BatchedDynamics::batchFdDerivatives(const VectorX *q, const VectorX *qd,
                                    const VectorX *tau, int n,
                                    const ColumnPlan *plan)
{
    if (static_cast<int>(fd_out_.size()) < n)
        fd_out_.resize(n);
    dispatch(Mode::FdDerivatives, q, qd, tau, n, plan);
    return fd_out_;
}

const std::vector<FdDerivatives> &
BatchedDynamics::batchFdDerivativesGivenAccel(
    const VectorX *q, const VectorX *qd, const VectorX *qdd,
    const linalg::MatrixX *const *minv, int n, const ColumnPlan *plan)
{
    if (static_cast<int>(fd_out_.size()) < n)
        fd_out_.resize(n);
    dispatch(Mode::FdGivenAccel, q, qd, qdd, n, plan, minv);
    return fd_out_;
}

const std::vector<linalg::MatrixX> &
BatchedDynamics::batchMinv(const std::vector<VectorX> &q)
{
    return batchMinv(q.data(), static_cast<int>(q.size()));
}

const std::vector<linalg::MatrixX> &
BatchedDynamics::batchMinv(const VectorX *q, int n)
{
    if (static_cast<int>(minv_out_.size()) < n)
        minv_out_.resize(n);
    dispatch(Mode::Minv, q, nullptr, nullptr, n);
    return minv_out_;
}

} // namespace dadu::algo
