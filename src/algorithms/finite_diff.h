/**
 * @file
 * Finite-difference derivative checks.
 *
 * Central differences over tangent-space perturbations (using
 * RobotModel::integrate for configuration variables, so quaternion
 * joints are perturbed on the manifold). Used by the property tests
 * to validate the analytical ∆RNEA and ∆FD implementations.
 */

#ifndef DADU_ALGORITHMS_FINITE_DIFF_H
#define DADU_ALGORITHMS_FINITE_DIFF_H

#include <vector>

#include "algorithms/col_gating.h"
#include "linalg/matrixx.h"
#include "model/robot_model.h"

namespace dadu::algo {

using linalg::MatrixX;
using linalg::Vec6;
using linalg::VectorX;
using model::RobotModel;

/** Numerical ∂τ/∂q by central differences (tangent space). */
MatrixX numericalDtauDq(const RobotModel &robot, const VectorX &q,
                        const VectorX &qd, const VectorX &qdd,
                        const std::vector<Vec6> *fext = nullptr,
                        double eps = 1e-6);

/** Numerical ∂τ/∂q̇ by central differences. */
MatrixX numericalDtauDqd(const RobotModel &robot, const VectorX &q,
                         const VectorX &qd, const VectorX &qdd,
                         const std::vector<Vec6> *fext = nullptr,
                         double eps = 1e-6);

/** Numerical ∂q̈/∂q by central differences through ABA. */
MatrixX numericalDqddDq(const RobotModel &robot, const VectorX &q,
                        const VectorX &qd, const VectorX &tau,
                        const std::vector<Vec6> *fext = nullptr,
                        double eps = 1e-6);

/** Numerical ∂q̈/∂q̇ by central differences through ABA. */
MatrixX numericalDqddDqd(const RobotModel &robot, const VectorX &q,
                         const VectorX &qd, const VectorX &tau,
                         const std::vector<Vec6> *fext = nullptr,
                         double eps = 1e-6);

struct DynamicsWorkspace;

/**
 * Workspace variants: the perturbed configurations/velocities, the
 * tangent step and the inner RNEA/ABA evaluations all reuse @p ws,
 * and @p j is resized in place — zero heap allocations in the
 * steady state. Results are bitwise identical to the allocating
 * overloads above.
 *
 * @param plan optional column gating: only live columns are
 *             perturbed and differenced (bitwise identical to the
 *             dense call at those columns); dead columns of @p j
 *             stay exactly 0.0. Null means dense.
 */
void numericalDtauDq(const RobotModel &robot, DynamicsWorkspace &ws,
                     const VectorX &q, const VectorX &qd,
                     const VectorX &qdd, MatrixX &j,
                     const std::vector<Vec6> *fext = nullptr,
                     double eps = 1e-6, const ColumnPlan *plan = nullptr);

void numericalDtauDqd(const RobotModel &robot, DynamicsWorkspace &ws,
                      const VectorX &q, const VectorX &qd,
                      const VectorX &qdd, MatrixX &j,
                      const std::vector<Vec6> *fext = nullptr,
                      double eps = 1e-6, const ColumnPlan *plan = nullptr);

void numericalDqddDq(const RobotModel &robot, DynamicsWorkspace &ws,
                     const VectorX &q, const VectorX &qd,
                     const VectorX &tau, MatrixX &j,
                     const std::vector<Vec6> *fext = nullptr,
                     double eps = 1e-6, const ColumnPlan *plan = nullptr);

void numericalDqddDqd(const RobotModel &robot, DynamicsWorkspace &ws,
                      const VectorX &q, const VectorX &qd,
                      const VectorX &tau, MatrixX &j,
                      const std::vector<Vec6> *fext = nullptr,
                      double eps = 1e-6, const ColumnPlan *plan = nullptr);

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_FINITE_DIFF_H
