#include "algorithms/rnea.h"

#include "algorithms/workspace.h"
#include "spatial/cross.h"

namespace dadu::algo {

using spatial::crossForce;
using spatial::crossMotion;
using spatial::crossMotionUnitScaled;
using spatial::SpatialTransform;

RneaResult
rnea(const RobotModel &robot, const VectorX &q, const VectorX &qd,
     const VectorX &qdd, const std::vector<Vec6> *fext)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    RneaResult res;
    rnea(robot, ws, q, qd, qdd, res, fext);
    return res;
}

void
rnea(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
     const VectorX &qd, const VectorX &qdd, RneaResult &res,
     const std::vector<Vec6> *fext, bool reuse_transforms,
     bool qdd_is_zero)
{
    ws.ensure(robot);
    const int nb = robot.nb();
    res.tau.resize(robot.nv());
    res.v.resize(nb);
    res.a.resize(nb);
    res.f.resize(nb);

    // Forward propagation (Algorithm 1 lines 2-6). The world base has
    // v = 0 and a = -g (gravity folded into the base acceleration).
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        if (!reuse_transforms)
            ws.xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const int vi = robot.link(i).vIndex;
        const Vec6 vj = s.applySegment(qd, vi);
        // Constant-folded v ×ₘ vj for 1-DOF joints (Section IV-A1).
        const int vj_ax = s.nv() == 1 ? s.unitAxis(0) : -1;

        const Vec6 vparent =
            lam == -1 ? Vec6::zero() : res.v[static_cast<size_t>(lam)];
        const Vec6 aparent =
            lam == -1 ? robot.gravity() : res.a[static_cast<size_t>(lam)];

        res.v[i] = ws.xup[i].applyMotion(vparent) + vj;
        const Vec6 vxvj =
            vj_ax >= 0 ? crossMotionUnitScaled(res.v[i], vj_ax, qd[vi])
                       : crossMotion(res.v[i], vj);
        if (qdd_is_zero)
            res.a[i] = ws.xup[i].applyMotion(aparent) + vxvj;
        else
            res.a[i] = ws.xup[i].applyMotion(aparent) +
                       s.applySegment(qdd, vi) + vxvj;
        res.f[i] = robot.link(i).inertia.apply(res.a[i]) +
                   crossForce(res.v[i],
                              robot.link(i).inertia.apply(res.v[i]));
        if (fext)
            res.f[i] -= (*fext)[i];
    }

    // Backward propagation (Algorithm 1 lines 7-10).
    for (int i = nb - 1; i >= 0; --i) {
        const auto &s = robot.subspace(i);
        const int vi = robot.link(i).vIndex;
        for (int k = 0; k < s.nv(); ++k) {
            const int ax = s.unitAxis(k);
            res.tau[vi + k] =
                ax >= 0 ? res.f[i][ax] : s.col(k).dot(res.f[i]);
        }
        const int lam = robot.parent(i);
        if (lam != -1)
            res.f[lam] += ws.xup[i].applyTransposeForce(res.f[i]);
    }
}

VectorX
biasForce(const RobotModel &robot, const VectorX &q, const VectorX &qd,
          const std::vector<Vec6> *fext)
{
    return rnea(robot, q, qd, VectorX(robot.nv()), fext).tau;
}

void
biasForce(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
          const VectorX &qd, VectorX &tau_out, const std::vector<Vec6> *fext,
          bool reuse_transforms)
{
    ws.ensure(robot);
    rnea(robot, ws, q, qd, ws.zero_nv, ws.rnea_res, fext,
         reuse_transforms, /*qdd_is_zero=*/true);
    tau_out = ws.rnea_res.tau;
}

} // namespace dadu::algo
