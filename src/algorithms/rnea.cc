#include "algorithms/rnea.h"

#include "spatial/cross.h"

namespace dadu::algo {

using spatial::crossForce;
using spatial::crossMotion;
using spatial::SpatialTransform;

RneaResult
rnea(const RobotModel &robot, const VectorX &q, const VectorX &qd,
     const VectorX &qdd, const std::vector<Vec6> *fext)
{
    const int nb = robot.nb();
    RneaResult res;
    res.tau.resize(robot.nv());
    res.v.assign(nb, Vec6::zero());
    res.a.assign(nb, Vec6::zero());
    res.f.assign(nb, Vec6::zero());

    std::vector<SpatialTransform> xup(nb);

    // Forward propagation (Algorithm 1 lines 2-6). The world base has
    // v = 0 and a = -g (gravity folded into the base acceleration).
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const Vec6 vj = s.apply(robot.jointVelocity(i, qd));
        const Vec6 aj = s.apply(robot.jointVelocity(i, qdd));

        const Vec6 vparent =
            lam == -1 ? Vec6::zero() : res.v[static_cast<size_t>(lam)];
        const Vec6 aparent =
            lam == -1 ? robot.gravity() : res.a[static_cast<size_t>(lam)];

        res.v[i] = xup[i].applyMotion(vparent) + vj;
        res.a[i] = xup[i].applyMotion(aparent) + aj +
                   crossMotion(res.v[i], vj);
        res.f[i] = robot.link(i).inertia.apply(res.a[i]) +
                   crossForce(res.v[i],
                              robot.link(i).inertia.apply(res.v[i]));
        if (fext)
            res.f[i] -= (*fext)[i];
    }

    // Backward propagation (Algorithm 1 lines 7-10).
    for (int i = nb - 1; i >= 0; --i) {
        const auto &s = robot.subspace(i);
        const VectorX taui = s.applyTranspose(res.f[i]);
        res.tau.setSegment(robot.link(i).vIndex, taui);
        const int lam = robot.parent(i);
        if (lam != -1)
            res.f[lam] += xup[i].applyTransposeForce(res.f[i]);
    }
    return res;
}

VectorX
biasForce(const RobotModel &robot, const VectorX &q, const VectorX &qd,
          const std::vector<Vec6> *fext)
{
    return rnea(robot, q, qd, VectorX(robot.nv()), fext).tau;
}

} // namespace dadu::algo
