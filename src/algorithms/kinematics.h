/**
 * @file
 * Forward kinematics and geometric Jacobians.
 *
 * The planning/control framework of Fig. 1 lists forward/inverse
 * kinematics and Jacobians among the functions local planners rely
 * on alongside the dynamics. The accelerator does not implement them
 * (they are cheap), but the library needs them for the examples and
 * the MPC workload, and they double as independent checks of the
 * spatial-transform conventions used everywhere else.
 */

#ifndef DADU_ALGORITHMS_KINEMATICS_H
#define DADU_ALGORITHMS_KINEMATICS_H

#include <vector>

#include "linalg/matrixx.h"
#include "model/robot_model.h"
#include "spatial/transform.h"

namespace dadu::algo {

using linalg::MatrixX;
using linalg::Vec3;
using linalg::VectorX;
using model::RobotModel;
using spatial::SpatialTransform;

/**
 * World-to-link transforms for every link: out[i] maps world-frame
 * Plücker coordinates into link i's frame (^iX_0).
 */
std::vector<SpatialTransform> forwardKinematics(const RobotModel &robot,
                                                const VectorX &q);

/** Position of link @p link's frame origin in world coordinates. */
Vec3 linkPosition(const RobotModel &robot, const VectorX &q, int link);

/**
 * Geometric Jacobian of link @p link: 6 x nv, mapping q̇ to the
 * link's spatial velocity expressed in the link's own frame (the
 * body Jacobian). Columns outside the root path are zero —
 * branch-induced sparsity again.
 */
MatrixX bodyJacobian(const RobotModel &robot, const VectorX &q,
                     int link);

/**
 * Spatial velocity of link @p link in its own frame for state
 * (q, q̇) — equals bodyJacobian(...) * q̇ and the RNEA's v_i.
 */
linalg::Vec6 linkVelocity(const RobotModel &robot, const VectorX &q,
                          const VectorX &qd, int link);

} // namespace dadu::algo

#endif // DADU_ALGORITHMS_KINEMATICS_H
