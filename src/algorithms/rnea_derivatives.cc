#include "algorithms/rnea_derivatives.h"

#include <vector>

#include "algorithms/workspace.h"
#include "spatial/cross.h"
#include "spatial/transform.h"

namespace dadu::algo {

using spatial::crossForce;
using spatial::crossMotion;
using spatial::crossMotionUnit;
using spatial::crossMotionUnitScaled;
using spatial::SpatialTransform;

RneaDerivatives
rneaDerivatives(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &qdd,
                const std::vector<Vec6> *fext)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    RneaDerivatives res;
    rneaDerivatives(robot, ws, q, qd, qdd, res, fext);
    return res;
}

void
rneaDerivatives(const RobotModel &robot, DynamicsWorkspace &ws,
                const VectorX &q, const VectorX &qd, const VectorX &qdd,
                RneaDerivatives &res, const std::vector<Vec6> *fext,
                bool reuse_transforms, const ColumnPlan *plan)
{
    ws.ensure(robot);
    const int nb = robot.nb();
    const int nv = robot.nv();

    // Column gating: every per-column loop below additionally skips
    // dead columns. Column chains are independent, so live columns
    // go through the identical arithmetic as the dense sweep.
    const bool gated = plan != nullptr && !plan->dense();
    const auto liveCol = [gated, plan](int col) {
        return !gated || plan->isLive(col);
    };

    res.dtau_dq.resize(nv, nv);
    res.dtau_dqd.resize(nv, nv);

    // The incremental column Jacobians of Fig. 7b live in one flat
    // (nb x nv) cell arena: cell [i*nv + col] holds column `col` of
    // all six of link i's Jacobians. Only the force Jacobians need
    // re-zeroing, and only at the related (possibly nonzero)
    // columns the backward sweep visits: the dv/da members are only
    // ever read at columns the forward pass wrote this call.
    for (int i = 0; i < nb; ++i) {
        DynamicsWorkspace::DerivCell *row =
            &ws.dcells[static_cast<std::size_t>(i) * nv];
        for (int col : ws.rel_cols[i]) {
            if (!liveCol(col))
                continue;
            row[col].df_dq = Vec6::zero();
            row[col].df_dqd = Vec6::zero();
        }
    }

    const auto cell = [&ws, nv](int i,
                                int col) -> DynamicsWorkspace::DerivCell & {
        return ws.dcells[static_cast<std::size_t>(i) * nv + col];
    };

    // ---------------- Forward propagation ----------------
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        if (!reuse_transforms)
            ws.xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        const Vec6 vj = s.applySegment(qd, vi);
        const Vec6 aj = s.applySegment(qdd, vi);
        const Vec6 vparent = lam == -1 ? Vec6::zero() : ws.v[lam];
        const Vec6 aparent = lam == -1 ? robot.gravity() : ws.a[lam];

        // Constant-folded vj cross (Section IV-A1): for a 1-DOF
        // joint vj = S q̇ is one nonzero entry, so x ×ₘ vj collapses.
        const int vj_ax = ni == 1 ? s.unitAxis(0) : -1;
        const double vj_w = ni == 1 ? qd[vi] : 0.0;
        const auto crossVj = [&](const Vec6 &x) {
            return vj_ax >= 0 ? crossMotionUnitScaled(x, vj_ax, vj_w)
                              : crossMotion(x, vj);
        };

        const Vec6 vc = ws.xup[i].applyMotion(vparent); // X v_λ
        const Vec6 ac = ws.xup[i].applyMotion(aparent); // X a_λ
        ws.v[i] = vc + vj;
        ws.a[i] = ac + aj + crossVj(ws.v[i]);

        // Ancestor columns: transform the parent Jacobians and add
        // the velocity-product coupling.
        if (lam != -1) {
            for (int col : ws.active_cols[lam]) {
                if (!liveCol(col))
                    continue;
                const DynamicsWorkspace::DerivCell &pc = cell(lam, col);
                DynamicsWorkspace::DerivCell &cc = cell(i, col);
                const Vec6 dvq = ws.xup[i].applyMotion(pc.dv_dq);
                const Vec6 dvqd = ws.xup[i].applyMotion(pc.dv_dqd);
                cc.dv_dq = dvq;
                cc.dv_dqd = dvqd;
                cc.da_dq = ws.xup[i].applyMotion(pc.da_dq) + crossVj(dvq);
                cc.da_dqd =
                    ws.xup[i].applyMotion(pc.da_dqd) + crossVj(dvqd);
            }
        }
        // Own-DOF columns (new columns of the incremental Jacobian).
        for (int k = 0; k < ni; ++k) {
            const int col = vi + k;
            if (!liveCol(col))
                continue;
            const Vec6 sk = s.col(k);
            const int sk_ax = s.unitAxis(k);
            // ∂(X v_λ)/∂q_k and friends: sk is one-hot, so the
            // crosses against it collapse the same way.
            const Vec6 dvq = sk_ax >= 0 ? crossMotionUnit(vc, sk_ax)
                                        : crossMotion(vc, sk);
            DynamicsWorkspace::DerivCell &cc = cell(i, col);
            cc.dv_dq = dvq;
            cc.dv_dqd = sk;
            cc.da_dq = (sk_ax >= 0 ? crossMotionUnit(ac, sk_ax)
                                   : crossMotion(ac, sk)) +
                       crossVj(dvq);
            cc.da_dqd = crossMotion(sk, vj) +
                        (sk_ax >= 0 ? crossMotionUnit(ws.v[i], sk_ax)
                                    : crossMotion(ws.v[i], sk));
        }

        // f and its Jacobians.
        const auto &inertia = robot.link(i).inertia;
        const Vec6 iv = inertia.apply(ws.v[i]);
        ws.f[i] = inertia.apply(ws.a[i]) + crossForce(ws.v[i], iv);
        if (fext)
            ws.f[i] -= (*fext)[i];
        for (int col : ws.active_cols[i]) {
            if (!liveCol(col))
                continue;
            DynamicsWorkspace::DerivCell &cc = cell(i, col);
            cc.df_dq = inertia.apply(cc.da_dq) +
                       crossForce(cc.dv_dq, iv) +
                       crossForce(ws.v[i], inertia.apply(cc.dv_dq));
            cc.df_dqd = inertia.apply(cc.da_dqd) +
                        crossForce(cc.dv_dqd, iv) +
                        crossForce(ws.v[i], inertia.apply(cc.dv_dqd));
        }
    }

    // ---------------- Backward propagation ----------------
    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        // ∂τ_i/∂x = S^T ∂f_i/∂x. Only the related columns (root
        // path + subtree of i) can be nonzero — descendant columns
        // were merged in through the child accumulation below — so
        // sweep rel_cols instead of all nv (branch-induced
        // sparsity; everything else stays zero from the resize).
        // One-hot subspace rows project by element read.
        for (int col : ws.rel_cols[i]) {
            if (!liveCol(col))
                continue;
            const DynamicsWorkspace::DerivCell &cc = cell(i, col);
            for (int r = 0; r < ni; ++r) {
                const int ax = s.unitAxis(r);
                if (ax >= 0) {
                    res.dtau_dq(vi + r, col) = cc.df_dq[ax];
                    res.dtau_dqd(vi + r, col) = cc.df_dqd[ax];
                } else {
                    res.dtau_dq(vi + r, col) = s.col(r).dot(cc.df_dq);
                    res.dtau_dqd(vi + r, col) = s.col(r).dot(cc.df_dqd);
                }
            }
        }

        if (lam != -1) {
            // ∂f_λ/∂x += λX*( ∂f_i/∂x + [x = q_i] S ×* f_i )
            // (the paper's backward transfer, Fig. 7), restricted to
            // the related columns — a superset of the nonzero ones
            // (rel_cols[i] ⊆ rel_cols[λ], so the accumulation targets
            // are zero-initialized).
            for (int col : ws.rel_cols[i]) {
                if (!liveCol(col))
                    continue;
                const DynamicsWorkspace::DerivCell &cc = cell(i, col);
                DynamicsWorkspace::DerivCell &pc = cell(lam, col);
                Vec6 dq_col = cc.df_dq;
                if (col >= vi && col < vi + ni)
                    dq_col += crossForce(s.col(col - vi), ws.f[i]);
                pc.df_dq += ws.xup[i].applyTransposeForce(dq_col);
                pc.df_dqd += ws.xup[i].applyTransposeForce(cc.df_dqd);
            }
            ws.f[lam] += ws.xup[i].applyTransposeForce(ws.f[i]);
        }
    }
}

} // namespace dadu::algo
