#include "algorithms/rnea_derivatives.h"

#include <vector>

#include "spatial/cross.h"
#include "spatial/transform.h"

namespace dadu::algo {

using spatial::crossForce;
using spatial::crossMotion;
using spatial::SpatialTransform;

namespace {

/**
 * 6 x nv Jacobian with a list of active (nonzero) columns — the
 * incremental column vectors of Fig. 7b.
 */
struct ColJacobian
{
    explicit ColJacobian(int nv) : cols(nv, Vec6::zero()) {}

    std::vector<Vec6> cols;
};

} // namespace

RneaDerivatives
rneaDerivatives(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &qdd,
                const std::vector<Vec6> *fext)
{
    const int nb = robot.nb();
    const int nv = robot.nv();

    RneaDerivatives res;
    res.dtau_dq.resize(nv, nv);
    res.dtau_dqd.resize(nv, nv);

    std::vector<SpatialTransform> xup(nb);
    std::vector<Vec6> v(nb), a(nb), f(nb);
    // Active columns for link i: DOF indices of all its ancestors and
    // itself, in increasing order.
    std::vector<std::vector<int>> active(nb);

    std::vector<ColJacobian> dv_dq(nb, ColJacobian(nv));
    std::vector<ColJacobian> dv_dqd(nb, ColJacobian(nv));
    std::vector<ColJacobian> da_dq(nb, ColJacobian(nv));
    std::vector<ColJacobian> da_dqd(nb, ColJacobian(nv));
    std::vector<ColJacobian> df_dq(nb, ColJacobian(nv));
    std::vector<ColJacobian> df_dqd(nb, ColJacobian(nv));

    // ---------------- Forward propagation ----------------
    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        if (lam != -1)
            active[i] = active[lam];
        for (int k = 0; k < ni; ++k)
            active[i].push_back(vi + k);

        const Vec6 vj = s.apply(robot.jointVelocity(i, qd));
        const Vec6 aj = s.apply(robot.jointVelocity(i, qdd));
        const Vec6 vparent = lam == -1 ? Vec6::zero() : v[lam];
        const Vec6 aparent = lam == -1 ? robot.gravity() : a[lam];

        const Vec6 vc = xup[i].applyMotion(vparent); // X v_λ
        const Vec6 ac = xup[i].applyMotion(aparent); // X a_λ
        v[i] = vc + vj;
        a[i] = ac + aj + crossMotion(v[i], vj);

        // Ancestor columns: transform the parent Jacobians and add
        // the velocity-product coupling.
        if (lam != -1) {
            for (int col : active[lam]) {
                const Vec6 dvq = xup[i].applyMotion(dv_dq[lam].cols[col]);
                const Vec6 dvqd = xup[i].applyMotion(dv_dqd[lam].cols[col]);
                dv_dq[i].cols[col] = dvq;
                dv_dqd[i].cols[col] = dvqd;
                da_dq[i].cols[col] =
                    xup[i].applyMotion(da_dq[lam].cols[col]) +
                    crossMotion(dvq, vj);
                da_dqd[i].cols[col] =
                    xup[i].applyMotion(da_dqd[lam].cols[col]) +
                    crossMotion(dvqd, vj);
            }
        }
        // Own-DOF columns (new columns of the incremental Jacobian).
        for (int k = 0; k < ni; ++k) {
            const int col = vi + k;
            const Vec6 sk = s.col(k);
            const Vec6 dvq = crossMotion(vc, sk);  // ∂(X v_λ)/∂q_k
            dv_dq[i].cols[col] = dvq;
            dv_dqd[i].cols[col] = sk;
            da_dq[i].cols[col] =
                crossMotion(ac, sk) + crossMotion(dvq, vj);
            da_dqd[i].cols[col] =
                crossMotion(sk, vj) + crossMotion(v[i], sk);
        }

        // f and its Jacobians.
        const auto &inertia = robot.link(i).inertia;
        const Vec6 iv = inertia.apply(v[i]);
        f[i] = inertia.apply(a[i]) + crossForce(v[i], iv);
        if (fext)
            f[i] -= (*fext)[i];
        for (int col : active[i]) {
            df_dq[i].cols[col] =
                inertia.apply(da_dq[i].cols[col]) +
                crossForce(dv_dq[i].cols[col], iv) +
                crossForce(v[i], inertia.apply(dv_dq[i].cols[col]));
            df_dqd[i].cols[col] =
                inertia.apply(da_dqd[i].cols[col]) +
                crossForce(dv_dqd[i].cols[col], iv) +
                crossForce(v[i], inertia.apply(dv_dqd[i].cols[col]));
        }
    }

    // ---------------- Backward propagation ----------------
    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        // ∂τ_i/∂x = S^T ∂f_i/∂x. Columns outside the subtree of the
        // root-path are zero, but columns of descendants were merged
        // in through the child accumulation below, so sweep all nv.
        for (int col = 0; col < nv; ++col) {
            for (int r = 0; r < ni; ++r) {
                res.dtau_dq(vi + r, col) = s.col(r).dot(df_dq[i].cols[col]);
                res.dtau_dqd(vi + r, col) =
                    s.col(r).dot(df_dqd[i].cols[col]);
            }
        }

        if (lam != -1) {
            // ∂f_λ/∂x += λX*( ∂f_i/∂x + [x = q_i] S ×* f_i )
            // (the paper's backward transfer, Fig. 7).
            for (int col = 0; col < nv; ++col) {
                Vec6 dq_col = df_dq[i].cols[col];
                if (col >= vi && col < vi + ni)
                    dq_col += crossForce(s.col(col - vi), f[i]);
                if (dq_col.maxAbs() != 0.0) {
                    df_dq[lam].cols[col] +=
                        xup[i].applyTransposeForce(dq_col);
                }
                const Vec6 &dqd_col = df_dqd[i].cols[col];
                if (dqd_col.maxAbs() != 0.0) {
                    df_dqd[lam].cols[col] +=
                        xup[i].applyTransposeForce(dqd_col);
                }
            }
            f[lam] += xup[i].applyTransposeForce(f[i]);
        }
    }
    return res;
}

} // namespace dadu::algo
