#include "algorithms/finite_diff.h"

#include "algorithms/aba.h"
#include "algorithms/rnea.h"

namespace dadu::algo {

namespace {

/** Tangent basis vector e_k scaled by eps. */
VectorX
tangentStep(int nv, int k, double eps)
{
    VectorX dv(nv);
    dv[k] = eps;
    return dv;
}

} // namespace

MatrixX
numericalDtauDq(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &qdd,
                const std::vector<Vec6> *fext, double eps)
{
    const int nv = robot.nv();
    MatrixX j(nv, nv);
    for (int k = 0; k < nv; ++k) {
        const VectorX qp = robot.integrate(q, tangentStep(nv, k, eps));
        const VectorX qm = robot.integrate(q, tangentStep(nv, k, -eps));
        const VectorX tp = rnea(robot, qp, qd, qdd, fext).tau;
        const VectorX tm = rnea(robot, qm, qd, qdd, fext).tau;
        for (int r = 0; r < nv; ++r)
            j(r, k) = (tp[r] - tm[r]) / (2.0 * eps);
    }
    return j;
}

MatrixX
numericalDtauDqd(const RobotModel &robot, const VectorX &q,
                 const VectorX &qd, const VectorX &qdd,
                 const std::vector<Vec6> *fext, double eps)
{
    const int nv = robot.nv();
    MatrixX j(nv, nv);
    for (int k = 0; k < nv; ++k) {
        VectorX qdp = qd, qdm = qd;
        qdp[k] += eps;
        qdm[k] -= eps;
        const VectorX tp = rnea(robot, q, qdp, qdd, fext).tau;
        const VectorX tm = rnea(robot, q, qdm, qdd, fext).tau;
        for (int r = 0; r < nv; ++r)
            j(r, k) = (tp[r] - tm[r]) / (2.0 * eps);
    }
    return j;
}

MatrixX
numericalDqddDq(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &tau,
                const std::vector<Vec6> *fext, double eps)
{
    const int nv = robot.nv();
    MatrixX j(nv, nv);
    for (int k = 0; k < nv; ++k) {
        const VectorX qp = robot.integrate(q, tangentStep(nv, k, eps));
        const VectorX qm = robot.integrate(q, tangentStep(nv, k, -eps));
        const VectorX ap = aba(robot, qp, qd, tau, fext);
        const VectorX am = aba(robot, qm, qd, tau, fext);
        for (int r = 0; r < nv; ++r)
            j(r, k) = (ap[r] - am[r]) / (2.0 * eps);
    }
    return j;
}

MatrixX
numericalDqddDqd(const RobotModel &robot, const VectorX &q,
                 const VectorX &qd, const VectorX &tau,
                 const std::vector<Vec6> *fext, double eps)
{
    const int nv = robot.nv();
    MatrixX j(nv, nv);
    for (int k = 0; k < nv; ++k) {
        VectorX qdp = qd, qdm = qd;
        qdp[k] += eps;
        qdm[k] -= eps;
        const VectorX ap = aba(robot, q, qdp, tau, fext);
        const VectorX am = aba(robot, q, qdm, tau, fext);
        for (int r = 0; r < nv; ++r)
            j(r, k) = (ap[r] - am[r]) / (2.0 * eps);
    }
    return j;
}

} // namespace dadu::algo
