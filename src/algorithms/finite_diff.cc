#include "algorithms/finite_diff.h"

#include "algorithms/aba.h"
#include "algorithms/rnea.h"
#include "algorithms/workspace.h"

namespace dadu::algo {

// Shared liveness test of the four gated column loops below.
static bool
liveCol(const ColumnPlan *plan, int col)
{
    return plan == nullptr || plan->dense() || plan->isLive(col);
}

MatrixX
numericalDtauDq(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &qdd,
                const std::vector<Vec6> *fext, double eps)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    MatrixX j;
    numericalDtauDq(robot, ws, q, qd, qdd, j, fext, eps);
    return j;
}

void
numericalDtauDq(const RobotModel &robot, DynamicsWorkspace &ws,
                const VectorX &q, const VectorX &qd, const VectorX &qdd,
                MatrixX &j, const std::vector<Vec6> *fext, double eps,
                const ColumnPlan *plan)
{
    ws.ensure(robot);
    const int nv = robot.nv();
    j.resize(nv, nv);
    ws.tangent.resize(nv); // all-zero tangent step
    for (int k = 0; k < nv; ++k) {
        if (!liveCol(plan, k))
            continue;
        ws.tangent[k] = eps;
        robot.integrateInto(q, ws.tangent, ws.q_plus);
        ws.tangent[k] = -eps;
        robot.integrateInto(q, ws.tangent, ws.q_minus);
        ws.tangent[k] = 0.0;
        rnea(robot, ws, ws.q_plus, qd, qdd, ws.rnea_plus, fext);
        rnea(robot, ws, ws.q_minus, qd, qdd, ws.rnea_minus, fext);
        for (int r = 0; r < nv; ++r)
            j(r, k) = (ws.rnea_plus.tau[r] - ws.rnea_minus.tau[r]) /
                      (2.0 * eps);
    }
}

MatrixX
numericalDtauDqd(const RobotModel &robot, const VectorX &q,
                 const VectorX &qd, const VectorX &qdd,
                 const std::vector<Vec6> *fext, double eps)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    MatrixX j;
    numericalDtauDqd(robot, ws, q, qd, qdd, j, fext, eps);
    return j;
}

void
numericalDtauDqd(const RobotModel &robot, DynamicsWorkspace &ws,
                 const VectorX &q, const VectorX &qd, const VectorX &qdd,
                 MatrixX &j, const std::vector<Vec6> *fext, double eps,
                 const ColumnPlan *plan)
{
    ws.ensure(robot);
    const int nv = robot.nv();
    j.resize(nv, nv);
    ws.vel_plus = qd;
    ws.vel_minus = qd;
    for (int k = 0; k < nv; ++k) {
        if (!liveCol(plan, k))
            continue;
        ws.vel_plus[k] = qd[k] + eps;
        ws.vel_minus[k] = qd[k] - eps;
        rnea(robot, ws, q, ws.vel_plus, qdd, ws.rnea_plus, fext);
        rnea(robot, ws, q, ws.vel_minus, qdd, ws.rnea_minus, fext);
        ws.vel_plus[k] = qd[k];
        ws.vel_minus[k] = qd[k];
        for (int r = 0; r < nv; ++r)
            j(r, k) = (ws.rnea_plus.tau[r] - ws.rnea_minus.tau[r]) /
                      (2.0 * eps);
    }
}

MatrixX
numericalDqddDq(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &tau,
                const std::vector<Vec6> *fext, double eps)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    MatrixX j;
    numericalDqddDq(robot, ws, q, qd, tau, j, fext, eps);
    return j;
}

void
numericalDqddDq(const RobotModel &robot, DynamicsWorkspace &ws,
                const VectorX &q, const VectorX &qd, const VectorX &tau,
                MatrixX &j, const std::vector<Vec6> *fext, double eps,
                const ColumnPlan *plan)
{
    ws.ensure(robot);
    const int nv = robot.nv();
    j.resize(nv, nv);
    ws.tangent.resize(nv);
    for (int k = 0; k < nv; ++k) {
        if (!liveCol(plan, k))
            continue;
        ws.tangent[k] = eps;
        robot.integrateInto(q, ws.tangent, ws.q_plus);
        ws.tangent[k] = -eps;
        robot.integrateInto(q, ws.tangent, ws.q_minus);
        ws.tangent[k] = 0.0;
        aba(robot, ws, ws.q_plus, qd, tau, ws.qdd_plus, fext);
        aba(robot, ws, ws.q_minus, qd, tau, ws.qdd_minus, fext);
        for (int r = 0; r < nv; ++r)
            j(r, k) = (ws.qdd_plus[r] - ws.qdd_minus[r]) / (2.0 * eps);
    }
}

MatrixX
numericalDqddDqd(const RobotModel &robot, const VectorX &q,
                 const VectorX &qd, const VectorX &tau,
                 const std::vector<Vec6> *fext, double eps)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    MatrixX j;
    numericalDqddDqd(robot, ws, q, qd, tau, j, fext, eps);
    return j;
}

void
numericalDqddDqd(const RobotModel &robot, DynamicsWorkspace &ws,
                 const VectorX &q, const VectorX &qd, const VectorX &tau,
                 MatrixX &j, const std::vector<Vec6> *fext, double eps,
                 const ColumnPlan *plan)
{
    ws.ensure(robot);
    const int nv = robot.nv();
    j.resize(nv, nv);
    ws.vel_plus = qd;
    ws.vel_minus = qd;
    for (int k = 0; k < nv; ++k) {
        if (!liveCol(plan, k))
            continue;
        ws.vel_plus[k] = qd[k] + eps;
        ws.vel_minus[k] = qd[k] - eps;
        aba(robot, ws, q, ws.vel_plus, tau, ws.qdd_plus, fext);
        aba(robot, ws, q, ws.vel_minus, tau, ws.qdd_minus, fext);
        ws.vel_plus[k] = qd[k];
        ws.vel_minus[k] = qd[k];
        for (int r = 0; r < nv; ++r)
            j(r, k) = (ws.qdd_plus[r] - ws.qdd_minus[r]) / (2.0 * eps);
    }
}

} // namespace dadu::algo
