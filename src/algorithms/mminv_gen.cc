#include "algorithms/mminv_gen.h"

#include <cassert>
#include <vector>

#include "linalg/factorize.h"
#include "linalg/mat.h"
#include "spatial/transform.h"

namespace dadu::algo {

using linalg::Mat66;
using linalg::Vec6;
using spatial::SpatialTransform;

MatrixX
mminvGen(const RobotModel &robot, const VectorX &q, bool out_m,
         bool out_minv)
{
    assert(out_m != out_minv &&
           "MMinvGen runs in exactly one output mode per invocation");
    const int nb = robot.nb();
    const int nv = robot.nv();
    MatrixX out(nv, nv);

    std::vector<SpatialTransform> xup(nb);
    std::vector<Mat66> ia(nb, Mat66::zero());
    // F_i: 6 x nv force workspace, nonzero only on tree(i) DOF
    // columns (branch-induced sparsity, Section V-C4).
    std::vector<MatrixX> f(nb, MatrixX(6, nv));
    std::vector<std::vector<Vec6>> ucols(nb);
    std::vector<MatrixX> dinv(nb);

    // DOF columns spanned by each subtree, in increasing order.
    std::vector<std::vector<int>> tree_cols(nb);
    for (int i = 0; i < nb; ++i) {
        for (int j : robot.subtree(i)) {
            const int vj = robot.link(j).vIndex;
            for (int k = 0; k < robot.subspace(j).nv(); ++k)
                tree_cols[i].push_back(vj + k);
        }
    }

    // Backward sweep (Algorithm 2 lines 1-17).
    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        ia[i] += robot.link(i).inertia.toMatrix();

        ucols[i].resize(ni);
        for (int k = 0; k < ni; ++k)
            ucols[i][k] = ia[i] * s.col(k);
        MatrixX d(ni, ni);
        for (int r = 0; r < ni; ++r)
            for (int k = 0; k < ni; ++k)
                d(r, k) = s.col(r).dot(ucols[i][k]);
        dinv[i] = linalg::Ldlt(d).inverse();

        if (out_minv) {
            // Minv[i, i] = D^-1.
            out.setBlock(vi, vi, dinv[i]);
            // Minv[i, treee(i)] = -D^-1 S^T F[:, treee(i)].
            for (int j : tree_cols[i]) {
                if (j >= vi && j < vi + ni)
                    continue; // treee excludes i itself
                VectorX stf(ni);
                for (int r = 0; r < ni; ++r) {
                    double acc = 0.0;
                    for (int a = 0; a < 6; ++a)
                        acc += s.col(r)[a] * f[i](a, j);
                    stf[r] = acc;
                }
                for (int r = 0; r < ni; ++r) {
                    double val = 0.0;
                    for (int k = 0; k < ni; ++k)
                        val -= dinv[i](r, k) * stf[k];
                    out(vi + r, j) = val;
                }
            }
        }
        if (out_m) {
            // M[i, i] = D; M[i, treee(i)] = S^T F[:, treee(i)].
            out.setBlock(vi, vi, d);
            for (int j : tree_cols[i]) {
                if (j >= vi && j < vi + ni)
                    continue;
                for (int r = 0; r < ni; ++r) {
                    double acc = 0.0;
                    for (int a = 0; a < 6; ++a)
                        acc += s.col(r)[a] * f[i](a, j);
                    out(vi + r, j) = acc;
                    out(j, vi + r) = acc;
                }
            }
        }

        if (lam != -1) {
            if (out_minv) {
                // F[:, tree(i)] += U Minv[i, tree(i)].
                for (int j : tree_cols[i]) {
                    for (int a = 0; a < 6; ++a) {
                        double acc = 0.0;
                        for (int k = 0; k < ni; ++k)
                            acc += ucols[i][k][a] * out(vi + k, j);
                        f[i](a, j) += acc;
                    }
                }
                // IA -= U D^-1 U^T (articulated-body correction).
                for (int r = 0; r < ni; ++r) {
                    for (int k = 0; k < ni; ++k) {
                        const double dk = dinv[i](r, k);
                        if (dk == 0.0)
                            continue;
                        for (int a = 0; a < 6; ++a)
                            for (int b = 0; b < 6; ++b)
                                ia[i](a, b) -=
                                    dk * ucols[i][r][a] * ucols[i][k][b];
                    }
                }
            }
            if (out_m) {
                // F[:, i] = U (composite-force seed for ancestors).
                for (int k = 0; k < ni; ++k)
                    for (int a = 0; a < 6; ++a)
                        f[i](a, vi + k) = ucols[i][k][a];
            }
            // F_λ[:, tree(i)] += λX* F_i[:, tree(i)] (lazy update in
            // hardware; plain accumulation here).
            for (int j : tree_cols[i]) {
                Vec6 col;
                for (int a = 0; a < 6; ++a)
                    col[a] = f[i](a, j);
                const Vec6 up = xup[i].applyTransposeForce(col);
                for (int a = 0; a < 6; ++a)
                    f[lam](a, j) += up[a];
            }
            // IA_λ += λX* IA_i iXλ.
            const Mat66 xm = xup[i].toMatrix();
            ia[lam] += xm.transpose() * ia[i] * xm;
        }
    }

    if (out_minv) {
        // Forward completion sweep (Algorithm 2 lines 18-24).
        std::vector<MatrixX> p(nb, MatrixX(6, nv));
        for (int i = 0; i < nb; ++i) {
            const int lam = robot.parent(i);
            const auto &s = robot.subspace(i);
            const int ni = s.nv();
            const int vi = robot.link(i).vIndex;

            if (lam != -1) {
                // Minv[i, i:] -= D^-1 U^T (iXλ P_λ[:, i:]).
                for (int j = vi; j < nv; ++j) {
                    Vec6 pcol;
                    for (int a = 0; a < 6; ++a)
                        pcol[a] = p[lam](a, j);
                    const Vec6 xp = xup[i].applyMotion(pcol);
                    VectorX ut(ni);
                    for (int r = 0; r < ni; ++r)
                        ut[r] = ucols[i][r].dot(xp);
                    for (int r = 0; r < ni; ++r) {
                        double val = 0.0;
                        for (int k = 0; k < ni; ++k)
                            val += dinv[i](r, k) * ut[k];
                        out(vi + r, j) -= val;
                    }
                }
            }
            // P_i[:, i:] = S Minv[i, i:] (+ iXλ P_λ[:, i:]).
            for (int j = vi; j < nv; ++j) {
                Vec6 pcol;
                for (int k = 0; k < ni; ++k)
                    pcol += s.col(k) * out(vi + k, j);
                if (lam != -1) {
                    Vec6 plam;
                    for (int a = 0; a < 6; ++a)
                        plam[a] = p[lam](a, j);
                    pcol += xup[i].applyMotion(plam);
                }
                for (int a = 0; a < 6; ++a)
                    p[i](a, j) = pcol[a];
            }
        }
        // Mirror the computed upper triangle.
        for (int r = 0; r < nv; ++r)
            for (int c = r + 1; c < nv; ++c)
                out(c, r) = out(r, c);
    }
    return out;
}

} // namespace dadu::algo
