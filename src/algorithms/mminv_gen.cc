#include "algorithms/mminv_gen.h"

#include <cassert>
#include <vector>

#include "algorithms/workspace.h"
#include "linalg/factorize.h"
#include "linalg/mat.h"
#include "spatial/transform.h"

namespace dadu::algo {

using linalg::Mat66;
using linalg::Vec6;
using spatial::SpatialTransform;

MatrixX
mminvGen(const RobotModel &robot, const VectorX &q, bool out_m,
         bool out_minv)
{
    DynamicsWorkspace &ws = threadLocalWorkspace();
    MatrixX out;
    mminvGen(robot, ws, q, out_m, out_minv, out);
    return out;
}

void
mminvGen(const RobotModel &robot, DynamicsWorkspace &ws, const VectorX &q,
         bool out_m, bool out_minv, MatrixX &out, bool reuse_transforms)
{
    assert(out_m != out_minv &&
           "MMinvGen runs in exactly one output mode per invocation");
    ws.ensure(robot);
    const int nb = robot.nb();
    const int nv = robot.nv();
    out.resize(nv, nv); // zeroes while reusing capacity

    // F_i: 6 x nv force workspace, nonzero only on tree(i) DOF
    // columns (branch-induced sparsity, Section V-C4) — so only
    // those columns need re-zeroing between calls. P_i needs none:
    // the completion sweep writes every column it later reads.
    for (int i = 0; i < nb; ++i) {
        ws.ia[i] = Mat66::zero();
        for (int j : ws.tree_cols[i])
            for (int a = 0; a < 6; ++a)
                ws.fmat[i](j, a) = 0.0;
    }

    // Backward sweep (Algorithm 2 lines 1-17).
    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        if (!reuse_transforms)
            ws.xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        Vec6 *ucols = &ws.ucols[static_cast<std::size_t>(i) * 6];
        double *dinv = &ws.dinv[static_cast<std::size_t>(i) * 36];
        MatrixX &f = ws.fmat[i];

        ws.ia[i] += robot.link(i).inertia.toMatrix();

        // U = I^A S: one-hot subspace columns read I^A columns
        // directly; D = S^T U likewise reads elements.
        for (int k = 0; k < ni; ++k) {
            const int ax = s.unitAxis(k);
            if (ax >= 0) {
                for (int a = 0; a < 6; ++a)
                    ucols[k][a] = ws.ia[i](a, ax);
            } else {
                ucols[k] = ws.ia[i] * s.col(k);
            }
        }
        double d[36];
        for (int r = 0; r < ni; ++r) {
            const int ax = s.unitAxis(r);
            for (int k = 0; k < ni; ++k)
                d[r * ni + k] =
                    ax >= 0 ? ucols[k][ax] : s.col(r).dot(ucols[k]);
        }
        if (ni == 1) {
            // 1-DOF joints (the overwhelmingly common case): the
            // LDLT inverse of a 1x1 reduces to one reciprocal,
            // bitwise identical to the general path.
            dinv[0] = 1.0 / d[0];
        } else {
            ws.small_ldlt.compute(d, ni);
            ws.small_ldlt.inverseInto(dinv);
        }

        if (out_minv) {
            // Minv[i, i] = D^-1.
            for (int r = 0; r < ni; ++r)
                for (int k = 0; k < ni; ++k)
                    out(vi + r, vi + k) = dinv[r * ni + k];
            // Minv[i, treee(i)] = -D^-1 S^T F[:, treee(i)].
            for (int j : ws.tree_cols[i]) {
                if (j >= vi && j < vi + ni)
                    continue; // treee excludes i itself
                double stf[6];
                for (int r = 0; r < ni; ++r) {
                    const int ax = s.unitAxis(r);
                    if (ax >= 0) {
                        stf[r] = f(j, ax);
                        continue;
                    }
                    double acc = 0.0;
                    for (int a = 0; a < 6; ++a)
                        acc += s.col(r)[a] * f(j, a);
                    stf[r] = acc;
                }
                for (int r = 0; r < ni; ++r) {
                    double val = 0.0;
                    for (int k = 0; k < ni; ++k)
                        val -= dinv[r * ni + k] * stf[k];
                    out(vi + r, j) = val;
                }
            }
        }
        if (out_m) {
            // M[i, i] = D; M[i, treee(i)] = S^T F[:, treee(i)].
            for (int r = 0; r < ni; ++r)
                for (int k = 0; k < ni; ++k)
                    out(vi + r, vi + k) = d[r * ni + k];
            for (int j : ws.tree_cols[i]) {
                if (j >= vi && j < vi + ni)
                    continue;
                for (int r = 0; r < ni; ++r) {
                    const int ax = s.unitAxis(r);
                    double acc;
                    if (ax >= 0) {
                        acc = f(j, ax);
                    } else {
                        acc = 0.0;
                        for (int a = 0; a < 6; ++a)
                            acc += s.col(r)[a] * f(j, a);
                    }
                    out(vi + r, j) = acc;
                    out(j, vi + r) = acc;
                }
            }
        }

        if (lam != -1) {
            if (out_minv) {
                // F[:, tree(i)] += U Minv[i, tree(i)].
                for (int j : ws.tree_cols[i]) {
                    for (int a = 0; a < 6; ++a) {
                        double acc = 0.0;
                        for (int k = 0; k < ni; ++k)
                            acc += ucols[k][a] * out(vi + k, j);
                        f(j, a) += acc;
                    }
                }
                // IA -= U D^-1 U^T (articulated-body correction).
                for (int r = 0; r < ni; ++r) {
                    for (int k = 0; k < ni; ++k) {
                        const double dk = dinv[r * ni + k];
                        if (dk == 0.0)
                            continue;
                        for (int a = 0; a < 6; ++a)
                            for (int b = 0; b < 6; ++b)
                                ws.ia[i](a, b) -=
                                    dk * ucols[r][a] * ucols[k][b];
                    }
                }
            }
            if (out_m) {
                // F[:, i] = U (composite-force seed for ancestors).
                for (int k = 0; k < ni; ++k)
                    for (int a = 0; a < 6; ++a)
                        f(vi + k, a) = ucols[k][a];
            }
            // F_λ[:, tree(i)] += λX* F_i[:, tree(i)] (lazy update in
            // hardware; plain accumulation here).
            for (int j : ws.tree_cols[i]) {
                Vec6 col;
                for (int a = 0; a < 6; ++a)
                    col[a] = f(j, a);
                const Vec6 up = ws.xup[i].applyTransposeForce(col);
                for (int a = 0; a < 6; ++a)
                    ws.fmat[lam](j, a) += up[a];
            }
            // IA_λ += λX* IA_i iXλ. IA is symmetric, so compute
            // N = IA X once and only the upper triangle of X^T N,
            // mirroring the rest (~40% fewer multiplies than two
            // dense 6x6 products).
            const Mat66 xm = ws.xup[i].toMatrix();
            const Mat66 n = ws.ia[i] * xm;
            for (int r = 0; r < 6; ++r) {
                for (int col = r; col < 6; ++col) {
                    double acc = 0.0;
                    for (int k = 0; k < 6; ++k)
                        acc += xm(k, r) * n(k, col);
                    ws.ia[lam](r, col) += acc;
                    if (col != r)
                        ws.ia[lam](col, r) += acc;
                }
            }
        }
    }

    if (out_minv) {
        // Forward completion sweep (Algorithm 2 lines 18-24). P
        // needs no zeroing: P_i[:, vi:] is written before any read,
        // and columns below vi are never touched.
        for (int i = 0; i < nb; ++i) {
            const int lam = robot.parent(i);
            const auto &s = robot.subspace(i);
            const int ni = s.nv();
            const int vi = robot.link(i).vIndex;

            const Vec6 *ucols = &ws.ucols[static_cast<std::size_t>(i) * 6];
            const double *dinv = &ws.dinv[static_cast<std::size_t>(i) * 36];

            // Per column j >= vi, in one pass (the transformed
            // parent column iXλ P_λ[:, j] is shared by both steps):
            //   Minv[i, j] -= D^-1 U^T (iXλ P_λ[:, j])
            //   P_i[:, j]   = S Minv[i, j] + iXλ P_λ[:, j]
            for (int j = vi; j < nv; ++j) {
                Vec6 xp;
                if (lam != -1) {
                    Vec6 plam;
                    for (int a = 0; a < 6; ++a)
                        plam[a] = ws.pmat[lam](j, a);
                    xp = ws.xup[i].applyMotion(plam);
                    double ut[6];
                    for (int r = 0; r < ni; ++r)
                        ut[r] = ucols[r].dot(xp);
                    for (int r = 0; r < ni; ++r) {
                        double val = 0.0;
                        for (int k = 0; k < ni; ++k)
                            val += dinv[r * ni + k] * ut[k];
                        out(vi + r, j) -= val;
                    }
                }
                Vec6 pcol;
                for (int k = 0; k < ni; ++k) {
                    const int ax = s.unitAxis(k);
                    if (ax >= 0)
                        pcol[ax] += out(vi + k, j);
                    else
                        pcol += s.col(k) * out(vi + k, j);
                }
                if (lam != -1)
                    pcol += xp;
                for (int a = 0; a < 6; ++a)
                    ws.pmat[i](j, a) = pcol[a];
            }
        }
        // Mirror the computed upper triangle.
        for (int r = 0; r < nv; ++r)
            for (int c = r + 1; c < nv; ++c)
                out(c, r) = out(r, c);
    }
}

} // namespace dadu::algo
