/**
 * @file
 * Fig. 13 scheduling: partially parallelizable task sets on the
 * pipelined accelerator vs a multi-threaded CPU.
 *
 * The RK4 sensitivity analysis has 4 serial sub-tasks per sample
 * point; different points are independent. The accelerator keeps its
 * pipeline full by interleaving stage-k sub-tasks of all points,
 * paying the pipeline latency only once per stage boundary; the CPU
 * runs points spatially across cores.
 */

#ifndef DADU_APP_SCHEDULER_H
#define DADU_APP_SCHEDULER_H

namespace dadu::app {

/**
 * Makespan in microseconds of @p points x @p stages serial-stage
 * tasks on a pipeline with initiation interval @p ii_cycles and
 * latency @p latency_cycles at @p freq_mhz (Fig. 13, top).
 *
 * Stage k+1 of a point needs stage k of the *same* point, so each
 * stage boundary costs one pipeline drain; within a stage all points
 * stream back-to-back.
 */
double scheduleSerialStagesUs(int points, int stages, double ii_cycles,
                              double latency_cycles, double freq_mhz);

/**
 * Makespan of the same task set on @p threads CPU cores with
 * per-sub-task time @p task_us (Fig. 13, bottom): points are
 * distributed spatially; stages serialize inside each point.
 */
double scheduleCpuUs(int points, int stages, double task_us,
                     int threads);

/**
 * Makespan in microseconds of a @p points x @p stages task set split
 * evenly across @p shards identical pipeline instances running
 * concurrently (the runtime's sharded batches over cloned
 * accelerators): each instance streams ceil(points/shards) tasks per
 * stage and pays the pipeline latency once per stage boundary, so
 * the job finishes with its largest shard. Shards = 1 reduces to
 * scheduleSerialStagesUs; stages = 1 is the flat sharded batch.
 */
double scheduleShardedUs(int points, int stages, int shards,
                         double ii_cycles, double latency_cycles,
                         double freq_mhz);

/**
 * Closed-form predicted makespan (µs, backend time) of admitting a
 * @p points x @p stages job to a lane already owing
 * @p queued_weight FD-equivalent tasks — the number an EDF admission
 * path turns into an absolute deadline (deadline = now + slack x
 * prediction) before tagging the job.
 *
 * @p task_us is the backend's mean per-task interval in
 * FD-equivalents (measured latency_us / sched::functionWeight(fn),
 * or ii_cycles / freq for modeled backends); @p fn_weight scales it
 * to the submitted function; @p latency_us is the per-batch pipeline
 * fill paid once per stage. The queued work drains first (its
 * batch latencies are already sunk), then the job streams:
 *
 *   queued_weight·task_us + stages·(points·task_us·fn_weight
 *                                   + latency_us)
 */
double predictedAdmissionUs(double queued_weight, int points, int stages,
                            double task_us, double latency_us,
                            double fn_weight);

} // namespace dadu::app

#endif // DADU_APP_SCHEDULER_H
