#include "app/scheduler.h"

#include <cmath>

#include "runtime/sched/admission.h"

namespace dadu::app {

double
scheduleSerialStagesUs(int points, int stages, double ii_cycles,
                       double latency_cycles, double freq_mhz)
{
    const double cycles =
        stages * (points * ii_cycles + latency_cycles);
    return cycles / (freq_mhz * 1e6) * 1e6;
}

double
scheduleCpuUs(int points, int stages, double task_us, int threads)
{
    const double rounds = std::ceil(static_cast<double>(points) / threads);
    return rounds * stages * task_us;
}

double
scheduleShardedUs(int points, int stages, int shards, double ii_cycles,
                  double latency_cycles, double freq_mhz)
{
    const int per_shard = (points + shards - 1) / shards;
    return scheduleSerialStagesUs(per_shard, stages, ii_cycles,
                                  latency_cycles, freq_mhz);
}

double
predictedAdmissionUs(double queued_weight, int points, int stages,
                     double task_us, double latency_us, double fn_weight)
{
    // Canonical definition lives with the admission policies that
    // consume it; this alias keeps the original app-layer callers.
    return runtime::sched::predictedAdmissionUs(
        queued_weight, points, stages, task_us, latency_us, fn_weight);
}

} // namespace dadu::app
