#include "app/scheduler.h"

#include <cmath>

namespace dadu::app {

double
scheduleSerialStagesUs(int points, int stages, double ii_cycles,
                       double latency_cycles, double freq_mhz)
{
    const double cycles =
        stages * (points * ii_cycles + latency_cycles);
    return cycles / (freq_mhz * 1e6) * 1e6;
}

double
scheduleCpuUs(int points, int stages, double task_us, int threads)
{
    const double rounds = std::ceil(static_cast<double>(points) / threads);
    return rounds * stages * task_us;
}

} // namespace dadu::app
