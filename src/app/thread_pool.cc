#include "app/thread_pool.h"

namespace dadu::app {

ThreadPool::ThreadPool(int threads)
{
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    cv_.notify_one();
}

void
ThreadPool::waitAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::runIndexed(void (*task)(void *, int), void *ctx, int count)
{
    if (count <= 0)
        return;
    if (workers_.empty()) {
        for (int i = 0; i < count; ++i)
            task(ctx, i);
        return;
    }
    // One bulk dispatch owns the pool at a time; concurrent callers
    // queue up here instead of corrupting each other's bulk_* state.
    std::lock_guard<std::mutex> gate(bulk_gate_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bulk_task_ = task;
        bulk_ctx_ = ctx;
        bulk_count_ = count;
        bulk_next_ = 0;
        bulk_done_ = 0;
    }
    cv_.notify_all();
    // The calling thread claims indices alongside the workers.
    while (true) {
        int idx;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (bulk_next_ >= bulk_count_)
                break;
            idx = bulk_next_++;
        }
        task(ctx, idx);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (++bulk_done_ == bulk_count_)
                done_cv_.notify_all();
        }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return bulk_done_ == bulk_count_; });
    bulk_task_ = nullptr;
    bulk_ctx_ = nullptr;
    bulk_count_ = 0;
    bulk_next_ = 0;
    bulk_done_ = 0;
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return stop_ || !queue_.empty() ||
                       bulk_next_ < bulk_count_;
            });
            if (stop_ && queue_.empty() && bulk_next_ >= bulk_count_)
                return;
            if (bulk_next_ < bulk_count_) {
                const int idx = bulk_next_++;
                void (*fn)(void *, int) = bulk_task_;
                void *ctx = bulk_ctx_;
                lock.unlock();
                fn(ctx, idx);
                lock.lock();
                if (++bulk_done_ == bulk_count_)
                    done_cv_.notify_all();
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0)
                done_cv_.notify_all();
        }
    }
}

} // namespace dadu::app
