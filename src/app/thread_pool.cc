#include "app/thread_pool.h"

namespace dadu::app {

ThreadPool::ThreadPool(int threads)
{
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    cv_.notify_one();
}

void
ThreadPool::waitAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0)
                done_cv_.notify_all();
        }
    }
}

} // namespace dadu::app
