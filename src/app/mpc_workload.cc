#include "app/mpc_workload.h"

#include <algorithm>
#include <cstdio>
#include <random>
#include <thread>

#include "algorithms/aba.h"
#include "algorithms/dynamics.h"
#include "app/scheduler.h"
#include "ctrl/mpc_session.h"
#include "linalg/factorize.h"
#include "perf/timing.h"
#include "runtime/server.h"

namespace dadu::app {

using algo::aba;
using algo::fdDerivatives;
using linalg::MatrixX;
using linalg::VectorX;

using perf::nowUs;

MpcWorkload::MpcWorkload(const RobotModel &robot, MpcConfig cfg)
    : robot_(robot), cfg_(cfg), ws_(robot),
      cpu_backend_(robot, cfg.threads)
{
    std::mt19937 rng(2025);
    for (int i = 0; i < cfg_.horizon_points; ++i) {
        qs_.push_back(robot_.randomConfiguration(rng));
        qds_.push_back(robot_.randomVelocity(rng));
        taus_.push_back(robot_.randomVelocity(rng));
    }
}

double
MpcWorkload::measureRolloutUs()
{
    // RK4 rollout: four serial FD stages per point, evaluated with
    // the reusable workspace (allocation-free steady state).
    volatile double sink = 0.0;
    const double t0 = nowUs();
    for (int i = 0; i < cfg_.horizon_points; ++i) {
        q_cur_ = qs_[i];
        qd_cur_ = qds_[i];
        for (int stage = 0; stage < 4; ++stage) {
            aba(robot_, ws_, q_cur_, qd_cur_, taus_[i], qdd_tmp_);
            step_tmp_.resize(qd_cur_.size());
            for (std::size_t j = 0; j < qd_cur_.size(); ++j)
                step_tmp_[j] = qd_cur_[j] * (0.5 * cfg_.dt);
            robot_.integrateInto(q_cur_, step_tmp_, q_next_);
            q_cur_ = q_next_;
            for (std::size_t j = 0; j < qd_cur_.size(); ++j)
                qd_cur_[j] += qdd_tmp_[j] * (0.5 * cfg_.dt);
        }
        sink = qd_cur_[0];
    }
    (void)sink;
    return nowUs() - t0;
}

double
MpcWorkload::measureSolverUs()
{
    // Riccati sweep: a backward pass of nv x nv factorizations.
    volatile double sink = 0.0;
    const double t0 = nowUs();
    MatrixX s = MatrixX::identity(robot_.nv());
    for (int i = cfg_.horizon_points - 1; i >= 0; --i) {
        // S <- Q + A^T S A shaped work via one Cholesky solve.
        const linalg::Cholesky chol(s + MatrixX::identity(robot_.nv()));
        s = chol.solve(MatrixX::identity(robot_.nv()));
        for (std::size_t r = 0; r < s.rows(); ++r)
            s(r, r) += 1.0;
    }
    sink = s(0, 0);
    (void)sink;
    return nowUs() - t0;
}

MpcBreakdown
MpcWorkload::measureCpu()
{
    MpcBreakdown b;
    volatile double sink = 0.0;

    // LQ approximation: ∆FD at every sample point, single-threaded.
    const double t0 = nowUs();
    for (int i = 0; i < cfg_.horizon_points; ++i) {
        algo::fdDerivatives(robot_, ws_, qs_[i], qds_[i], taus_[i],
                            fd_tmp_);
        sink = fd_tmp_.dqdd_dq(0, 0);
    }
    b.lq_us = nowUs() - t0;
    (void)sink;

    b.rollout_us = measureRolloutUs();
    b.solver_us = measureSolverUs();
    return b;
}

MpcBreakdown
MpcWorkload::measureCpuBatched()
{
    MpcBreakdown b;

    // LQ approximation: one ∆FD batch over the whole horizon,
    // submitted through the runtime's CPU backend (thread-pool
    // engine underneath). The workload already holds columnar
    // horizon vectors, so the columnar fast path skips the AoS
    // staging copy and the timed number stays comparable to the
    // direct engine measurement. An untimed warm-up batch sizes the
    // engine and result storage so the timed pass measures the
    // zero-allocation steady state an MPC loop actually runs in.
    const std::size_t n = qs_.size();
    if (lq_res_.size() < n)
        lq_res_.resize(n);
    runtime::BatchStats stats;
    cpu_backend_.submitColumns(runtime::FunctionType::DeltaFD,
                               qs_.data(), qds_.data(), taus_.data(), n,
                               lq_res_.data());
    cpu_backend_.submitColumns(runtime::FunctionType::DeltaFD,
                               qs_.data(), qds_.data(), taus_.data(), n,
                               lq_res_.data(), &stats);
    b.lq_us = stats.total_us;
    volatile double sink = lq_res_[0].dqdd_dq(0, 0);
    (void)sink;

    b.rollout_us = measureRolloutUs();
    b.solver_us = measureSolverUs();
    return b;
}

double
MpcWorkload::cpuIterationUs(int threads)
{
    return cpuIterationUsFrom(measureCpu(), threads);
}

double
MpcWorkload::cpuIterationUsFrom(const MpcBreakdown &b, int threads)
{
    const double scale = perf::threadScaling(threads);
    // LQ approximation and rollouts parallelize across sample
    // points; the Riccati sweep is serial (Fig. 2c structure).
    return (b.lq_us + b.rollout_us) / scale + b.solver_us;
}

void
MpcWorkload::advanceRollout(void *ctx, int /*next_stage*/,
                            const runtime::DynamicsResult *results,
                            runtime::DynamicsRequest *requests,
                            std::size_t points)
{
    // The same half-step recurrence as measureRolloutUs: q advances
    // with the pre-update velocity, then q̇ absorbs the stage's q̈.
    // ctx is a per-job RolloutCtx so concurrently-served rollouts
    // (different server worker threads) never share scratch.
    auto *rc = static_cast<RolloutCtx *>(ctx);
    const double h = rc->half_dt;
    for (std::size_t p = 0; p < points; ++p) {
        runtime::DynamicsRequest &req = requests[p];
        rc->step.resize(req.qd.size());
        for (std::size_t j = 0; j < req.qd.size(); ++j)
            rc->step[j] = req.qd[j] * h;
        rc->robot->integrateInto(req.q, rc->step, rc->q_next);
        req.q = rc->q_next;
        for (std::size_t j = 0; j < req.qd.size(); ++j)
            req.qd[j] += results[p].qdd[j] * h;
    }
}

MpcBreakdown
MpcWorkload::backendBreakdown(runtime::DynamicsBackend &backend)
{
    const std::size_t n = qs_.size();
    if (lq_req_.size() < n)
        lq_req_.resize(n);
    if (lq_res_.size() < n)
        lq_res_.resize(n);
    if (ro_req_.size() < n)
        ro_req_.resize(n);
    if (ro_res_.size() < n)
        ro_res_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        lq_req_[i].q = qs_[i];
        lq_req_[i].qd = qds_[i];
        lq_req_[i].qdd_or_tau = taus_[i];
        // Rollout stage-0 state: same sample points; tau stays fixed
        // across the four stages, q/q̇ advance via advanceRollout.
        ro_req_[i].q = qs_[i];
        ro_req_[i].qd = qds_[i];
        ro_req_[i].qdd_or_tau = taus_[i];
    }

    runtime::DynamicsServer server(backend);
    ro_ctx_.robot = &robot_;
    ro_ctx_.half_dt = 0.5 * cfg_.dt;
    const int lq = server.submit(runtime::FunctionType::DeltaFD,
                                 lq_req_.data(), n, lq_res_.data());
    const int ro = server.submitSerialStages(
        runtime::FunctionType::FD, ro_req_.data(), n, 4,
        &MpcWorkload::advanceRollout, &ro_ctx_, ro_res_.data());
    server.drain();

    MpcBreakdown b;
    b.lq_us = server.jobUs(lq);
    b.rollout_us = server.jobUs(ro);
    b.solver_us = measureSolverUs();
    return b;
}

double
MpcWorkload::backendIterationUs(runtime::DynamicsBackend &backend)
{
    return iterationUsFrom(backendBreakdown(backend),
                           backend.offloaded());
}

MultiClientReport
MpcWorkload::serveMultiClient(runtime::DynamicsServer &server,
                              int clients, int rounds,
                              double deadline_slack)
{
    // Per-client job storage: requests/results must stay alive (and
    // exclusively owned) until the client's jobs complete, so each
    // client thread gets its own slice — no sharing, no staging
    // reuse across clients.
    struct ClientState
    {
        std::vector<runtime::DynamicsRequest> lq_req, ro_req;
        std::vector<runtime::DynamicsResult> lq_res, ro_res;
        RolloutCtx ro_ctx;
    };
    const std::size_t n = qs_.size();
    std::vector<ClientState> states(clients);
    for (int c = 0; c < clients; ++c) {
        ClientState &st = states[c];
        st.lq_req.resize(n);
        st.ro_req.resize(n);
        st.lq_res.resize(n);
        st.ro_res.resize(n);
        st.ro_ctx.robot = &robot_;
        st.ro_ctx.half_dt = 0.5 * cfg_.dt;
    }

    const bool was_running = server.running();
    if (!was_running)
        server.start();

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([this, &server, &states, c, rounds, n,
                              deadline_slack] {
            ClientState &st = states[c];
            // Per-task backend time in FD-equivalents, calibrated
            // from the previous round's LQ BatchStats: feeds the
            // closed-form makespan prediction behind each deadline.
            const double dfd_weight = runtime::sched::functionWeight(
                runtime::FunctionType::DeltaFD);
            double task_us = 0.0;
            for (int r = 0; r < rounds; ++r) {
                // Client c looks at the horizon shifted by c so the
                // concurrent traffic differs per client.
                for (std::size_t i = 0; i < n; ++i) {
                    const std::size_t s = (i + c) % n;
                    st.lq_req[i].q = qs_[s];
                    st.lq_req[i].qd = qds_[s];
                    st.lq_req[i].qdd_or_tau = taus_[s];
                    st.ro_req[i] = st.lq_req[i];
                }
                runtime::sched::JobTag lq_tag, ro_tag;
                if (deadline_slack > 0.0 && task_us > 0.0) {
                    double queued = server.laneLoadWeight(0);
                    for (int l = 1; l < server.backendCount(); ++l)
                        queued = std::min(queued,
                                          server.laneLoadWeight(l));
                    const double now = perf::nowUs();
                    lq_tag.deadline_us =
                        now + deadline_slack *
                                  predictedAdmissionUs(
                                      queued, static_cast<int>(n), 1,
                                      task_us, 0.0, dfd_weight);
                    ro_tag.deadline_us =
                        now + deadline_slack *
                                  predictedAdmissionUs(
                                      queued, static_cast<int>(n), 4,
                                      task_us, 0.0,
                                      runtime::sched::functionWeight(
                                          runtime::FunctionType::FD));
                }
                const double round_t0 = perf::nowUs();
                const int lq = server.submitSharded(
                    runtime::FunctionType::DeltaFD, st.lq_req.data(), n,
                    st.lq_res.data(), lq_tag);
                const int ro = server.submitSerialStages(
                    runtime::FunctionType::FD, st.ro_req.data(), n, 4,
                    &MpcWorkload::advanceRollout, &st.ro_ctx,
                    st.ro_res.data(),
                    runtime::DynamicsServer::kLeastLoaded, ro_tag);
                server.wait(lq);
                if (deadline_slack > 0.0) {
                    // Calibrate from the WALL time of the client's
                    // own LQ round, because the deadline is judged
                    // against wall-clock completion: BatchStats
                    // would give modeled backend time here, which
                    // for simulated/analytic backends has no
                    // relation to how long this host really takes
                    // to serve the batch. Queueing delay is
                    // included, which only loosens the prediction.
                    const double wall = perf::nowUs() - round_t0;
                    if (wall > 0.0)
                        task_us = wall / (n * dfd_weight);
                }
                server.wait(ro);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    if (!was_running)
        server.stop();

    runtime::ServerStats stats;
    runtime::sched::SchedStats sstats;
    server.drain(&stats, &sstats);
    MultiClientReport report;
    report.makespan_us = stats.makespan_us;
    report.busy_us = stats.busy_us;
    report.jobs = stats.jobs;
    report.tasks = stats.tasks;
    report.throughput_mtasks =
        stats.makespan_us > 0.0 ? stats.tasks / stats.makespan_us : 0.0;
    report.deadline_met = sstats.deadline_met;
    report.deadline_misses = sstats.deadline_misses;
    report.coalesced_batches = sstats.coalesced_batches;
    report.steals = sstats.steals;
    return report;
}

namespace {

/**
 * Ticks per drain round of the closed-loop drivers: the server
 * retires completed job records only at drain(), so an undrained
 * tick stream would grow its job deque linearly with run length.
 * Draining happens at round boundaries with no client thread
 * running (a join barrier), so it can never race a session's
 * post-wait deadline reads.
 */
constexpr int kTicksPerDrain = 16;

/** Per-client plant state persisting across drain rounds. */
struct PlantState
{
    explicit PlantState(const RobotModel &robot) : ws(robot) {}
    algo::DynamicsWorkspace ws;
    VectorX q, qd, qdd, step, q_next;
};

/**
 * One round of the tick stream of a closed-loop client: drive an
 * already-primed session against a plant stepped with the reference
 * dynamics (ABA + manifold Euler, the ground truth the backends are
 * validated against). Priming (MpcSession::start) happens before
 * the caller starts its tick-throughput clock, so ticks_per_s
 * measures the steady receding-horizon loop, not the cold solve.
 */
void
tickClosedLoopClient(const RobotModel &robot, ctrl::MpcSession &session,
                     runtime::DynamicsServer &server, int ticks,
                     PlantState &st)
{
    const double dt = session.scenario().problem.dt;
    for (int t = 0; t < ticks; ++t) {
        const VectorX &u = session.tick(server, st.q, st.qd);
        algo::aba(robot, st.ws, st.q, st.qd, u, st.qdd);
        st.step.resize(st.qd.size());
        for (std::size_t j = 0; j < st.qd.size(); ++j)
            st.step[j] = dt * st.qd[j];
        robot.integrateInto(st.q, st.step, st.q_next);
        st.q = st.q_next;
        for (std::size_t j = 0; j < st.qd.size(); ++j)
            st.qd[j] += dt * st.qdd[j];
    }
}

/**
 * Plant tracking error against the session's LIVE front reference:
 * tick() rotates periodic references one knot per tick, so the live
 * q_ref[0] is the pattern sample at the plant's current time (for
 * constant references it equals the scenario's terminal entry).
 */
double
trackingErr(const RobotModel &robot, const ctrl::MpcSession &session,
            const PlantState &st, VectorX &err)
{
    robot.differenceInto(session.solver().problem().q_ref[0], st.q,
                         err);
    return err.maxAbs();
}

/** Accumulate the server's accounting interval into the report's
 *  server-side fields (shared by both closed-loop entry points;
 *  accumulating so periodic round drains compose). */
void
drainServerInto(runtime::DynamicsServer &server, ClosedLoopReport &report)
{
    runtime::ServerStats stats;
    runtime::sched::SchedStats sstats;
    server.drain(&stats, &sstats);
    report.jobs += stats.jobs;
    report.tasks += stats.tasks;
    report.busy_us += stats.busy_us;
    report.deadline_met += sstats.deadline_met;
    report.deadline_misses += sstats.deadline_misses;
    report.coalesced_batches += sstats.coalesced_batches;
    report.steals += sstats.steals;
    report.rejected_jobs += sstats.rejected_jobs;
    report.failed_jobs += sstats.failed_jobs;
    report.lane_deaths += sstats.lane_deaths;
    report.transient_faults += sstats.transient_faults;
    report.retries += sstats.retries;
}

} // namespace

ClosedLoopReport
MpcWorkload::solveClosedLoop(runtime::DynamicsBackend &backend,
                             int ticks, ctrl::IlqrOptions options)
{
    runtime::DynamicsServer server(backend);
    ctrl::MpcSession session(robot_, ctrl::makeReachingScenario(robot_),
                             options);
    ClosedLoopReport report;
    report.converged = session.start(server).converged;
    PlantState st(robot_);
    st.q = session.scenario().q0;
    st.qd = session.scenario().qd0;
    const double t0 = nowUs();
    for (int done = 0; done < ticks; done += kTicksPerDrain) {
        tickClosedLoopClient(robot_, session, server,
                             std::min(kTicksPerDrain, ticks - done),
                             st);
        drainServerInto(server, report);
    }
    report.wall_us = nowUs() - t0;
    VectorX err;
    report.tracking_err = trackingErr(robot_, session, st, err);
    report.ticks = session.stats().ticks;
    report.ticks_per_s =
        report.wall_us > 0.0 ? report.ticks * 1e6 / report.wall_us : 0.0;
    report.final_cost = session.stats().horizon_cost;

    const ctrl::IlqrSolver::GatingStats &gs =
        session.solver().gatingStats();
    report.dense_refreshes = gs.dense;
    report.gated_refreshes = gs.gated;
    report.skipped_refreshes = gs.skipped;
    report.mean_live_density =
        gs.gated > 0 ? static_cast<double>(gs.live_columns) /
                           (static_cast<double>(gs.gated) * robot_.nv())
                     : 0.0;

    return report;
}

ClosedLoopReport
MpcWorkload::serveClosedLoopClients(runtime::DynamicsServer &server,
                                    int clients, int ticks,
                                    double deadline_slack)
{
    // One session per client, scenario mix phase-shifted per client
    // so the concurrent traffic differs without losing determinism.
    // MpcSession clamps negative slack too; clamping here keeps the
    // untagged-bulk interpretation visible at the workload boundary.
    deadline_slack = std::max(0.0, deadline_slack);
    std::vector<std::unique_ptr<ctrl::MpcSession>> sessions;
    sessions.reserve(clients);
    for (int c = 0; c < clients; ++c) {
        ctrl::Scenario sc =
            ctrl::makeScenario(robot_, c, 16, 0.01, 0.7 * c);
        ctrl::MpcSession::Config cfg;
        cfg.deadline_slack = deadline_slack;
        sessions.push_back(std::make_unique<ctrl::MpcSession>(
            robot_, std::move(sc), ctrl::IlqrOptions{}, cfg));
        // When the caller enabled tracing on the server, give each
        // client its own ring so solver-side events land on a named
        // per-client track (attachTrace is a no-op otherwise).
        if (server.traceBuffer()) {
            char name[32];
            std::snprintf(name, sizeof(name), "mpc%d", c);
            sessions[c]->attachTrace(server, name);
        }
    }

    const bool was_running = server.running();
    if (!was_running)
        server.start();

    // Prime every session before the throughput clock starts: the
    // cold full solves are setup, not tick-stream work.
    ClosedLoopReport report;
    for (int c = 0; c < clients; ++c) {
        if (!sessions[c]->start(server).converged)
            report.converged = false;
    }

    std::vector<PlantState> plants;
    plants.reserve(clients);
    for (int c = 0; c < clients; ++c) {
        plants.emplace_back(robot_);
        plants[c].q = sessions[c]->scenario().q0;
        plants[c].qd = sessions[c]->scenario().qd0;
    }

    // Rounds of concurrent ticking with a drain at each join
    // barrier: the clients stress the server together, while job
    // records retire every kTicksPerDrain ticks instead of piling
    // up for the whole run.
    const double t0 = nowUs();
    for (int done = 0; done < ticks; done += kTicksPerDrain) {
        const int round = std::min(kTicksPerDrain, ticks - done);
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([this, &server, &sessions, &plants, c,
                                  round] {
                tickClosedLoopClient(robot_, *sessions[c], server,
                                     round, plants[c]);
            });
        }
        for (std::thread &t : threads)
            t.join();
        drainServerInto(server, report);
    }
    report.wall_us = nowUs() - t0;

    VectorX err;
    for (int c = 0; c < clients; ++c) {
        report.tracking_err =
            std::max(report.tracking_err,
                     trackingErr(robot_, *sessions[c], plants[c], err));
        report.final_cost += sessions[c]->stats().horizon_cost;
        report.ticks += sessions[c]->stats().ticks;
        report.degraded_ticks += sessions[c]->stats().degraded_ticks;
    }
    report.ticks_per_s =
        report.wall_us > 0.0 ? report.ticks * 1e6 / report.wall_us : 0.0;
    if (!was_running)
        server.stop();

    return report;
}

double
MpcWorkload::acceleratedIterationUs(Accelerator &accel)
{
    // The accelerated MPC number is backed by real simulated
    // execution: every FD/∆FD batch runs through the cycle-accurate
    // pipelines (not the closed-form estimates).
    runtime::AcceleratorBackend backend(accel);
    return backendIterationUs(backend);
}

} // namespace dadu::app
