#include "app/mpc_workload.h"

#include <chrono>
#include <random>

#include "algorithms/aba.h"
#include "algorithms/dynamics.h"
#include "app/scheduler.h"
#include "linalg/factorize.h"
#include "perf/timing.h"

namespace dadu::app {

using algo::aba;
using algo::fdDerivatives;
using linalg::MatrixX;
using linalg::VectorX;

namespace {

double
nowUs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count() /
           1000.0;
}

} // namespace

MpcWorkload::MpcWorkload(const RobotModel &robot, MpcConfig cfg)
    : robot_(robot), cfg_(cfg), ws_(robot), engine_(robot, cfg.threads)
{
    std::mt19937 rng(2025);
    for (int i = 0; i < cfg_.horizon_points; ++i) {
        qs_.push_back(robot_.randomConfiguration(rng));
        qds_.push_back(robot_.randomVelocity(rng));
        taus_.push_back(robot_.randomVelocity(rng));
    }
}

double
MpcWorkload::measureRolloutUs()
{
    // RK4 rollout: four serial FD stages per point, evaluated with
    // the reusable workspace (allocation-free steady state).
    volatile double sink = 0.0;
    const double t0 = nowUs();
    for (int i = 0; i < cfg_.horizon_points; ++i) {
        q_cur_ = qs_[i];
        qd_cur_ = qds_[i];
        for (int stage = 0; stage < 4; ++stage) {
            aba(robot_, ws_, q_cur_, qd_cur_, taus_[i], qdd_tmp_);
            step_tmp_.resize(qd_cur_.size());
            for (std::size_t j = 0; j < qd_cur_.size(); ++j)
                step_tmp_[j] = qd_cur_[j] * (0.5 * cfg_.dt);
            robot_.integrateInto(q_cur_, step_tmp_, q_next_);
            q_cur_ = q_next_;
            for (std::size_t j = 0; j < qd_cur_.size(); ++j)
                qd_cur_[j] += qdd_tmp_[j] * (0.5 * cfg_.dt);
        }
        sink = qd_cur_[0];
    }
    (void)sink;
    return nowUs() - t0;
}

double
MpcWorkload::measureSolverUs()
{
    // Riccati sweep: a backward pass of nv x nv factorizations.
    volatile double sink = 0.0;
    const double t0 = nowUs();
    MatrixX s = MatrixX::identity(robot_.nv());
    for (int i = cfg_.horizon_points - 1; i >= 0; --i) {
        // S <- Q + A^T S A shaped work via one Cholesky solve.
        const linalg::Cholesky chol(s + MatrixX::identity(robot_.nv()));
        s = chol.solve(MatrixX::identity(robot_.nv()));
        for (std::size_t r = 0; r < s.rows(); ++r)
            s(r, r) += 1.0;
    }
    sink = s(0, 0);
    (void)sink;
    return nowUs() - t0;
}

MpcBreakdown
MpcWorkload::measureCpu()
{
    MpcBreakdown b;
    volatile double sink = 0.0;

    // LQ approximation: ∆FD at every sample point, single-threaded.
    const double t0 = nowUs();
    for (int i = 0; i < cfg_.horizon_points; ++i) {
        algo::fdDerivatives(robot_, ws_, qs_[i], qds_[i], taus_[i],
                            fd_tmp_);
        sink = fd_tmp_.dqdd_dq(0, 0);
    }
    b.lq_us = nowUs() - t0;
    (void)sink;

    b.rollout_us = measureRolloutUs();
    b.solver_us = measureSolverUs();
    return b;
}

MpcBreakdown
MpcWorkload::measureCpuBatched()
{
    MpcBreakdown b;

    // LQ approximation: one ∆FD batch over the whole horizon through
    // the thread-pool engine (the paper's parallelizable share). An
    // untimed warm-up batch sizes the engine outputs so the timed
    // pass measures the zero-allocation steady state an MPC loop
    // actually runs in.
    engine_.batchFdDerivatives(qs_, qds_, taus_);
    const double t0 = nowUs();
    const auto &lq = engine_.batchFdDerivatives(qs_, qds_, taus_);
    b.lq_us = nowUs() - t0;
    volatile double sink = lq[0].dqdd_dq(0, 0);
    (void)sink;

    b.rollout_us = measureRolloutUs();
    b.solver_us = measureSolverUs();
    return b;
}

double
MpcWorkload::cpuIterationUs(int threads)
{
    const MpcBreakdown b = measureCpu();
    const double scale = perf::threadScaling(threads);
    // LQ approximation and rollouts parallelize across sample
    // points; the Riccati sweep is serial (Fig. 2c structure).
    return (b.lq_us + b.rollout_us) / scale + b.solver_us;
}

double
MpcWorkload::acceleratedIterationUs(Accelerator &accel)
{
    const MpcBreakdown b = measureCpu();
    // The LQ approximation maps to one ∆FD batch over the horizon;
    // the rollout maps to 4 serial FD stages per point, interleaved
    // across points per Fig. 13.
    const auto dfd = accel.analytic(accel::FunctionType::DeltaFD);
    const double lq_us =
        cfg_.horizon_points * dfd.ii_cycles /
        (accel.config().freq_mhz * 1e6) * 1e6;
    const auto fd = accel.analytic(accel::FunctionType::FD);
    const double rollout_us = scheduleSerialStagesUs(
        cfg_.horizon_points, 4, fd.ii_cycles, fd.latency_cycles,
        accel.config().freq_mhz);
    // CPU keeps the solver; accelerator phases overlap CPU solver
    // except for the data dependency at the end of the iteration.
    return std::max(lq_us + rollout_us + dfd.latency_us,
                    b.solver_us);
}

} // namespace dadu::app
