/**
 * @file
 * Minimal fixed-size thread pool for the multi-threaded CPU baseline
 * (the paper's Fig. 2b experiment runs the LQ-approximation tasks on
 * 1-12 threads).
 */

#ifndef DADU_APP_THREAD_POOL_H
#define DADU_APP_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dadu::app {

/** Fixed-size worker pool with a blocking wait-for-all. */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void waitAll();

    /**
     * Run task(ctx, index) for every index in [0, count) across the
     * worker threads (the calling thread participates) and block
     * until all of them have completed. Unlike submit(), dispatch is
     * allocation-free — no std::function, no queue nodes — which
     * keeps the batched dynamics hot loop heap-silent.
     *
     * Safe to call from multiple threads: concurrent bulk dispatches
     * are serialized on an internal gate (the pool runs one indexed
     * batch at a time; later callers block until the earlier batch
     * completes). Do NOT call from inside one of the pool's own
     * tasks — a worker blocking on the gate would deadlock the batch
     * it belongs to.
     */
    void runIndexed(void (*task)(void *ctx, int index), void *ctx,
                    int count);

    int threadCount() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    int in_flight_ = 0;
    bool stop_ = false;

    // Bulk (indexed) dispatch state, guarded by mutex_. The state is
    // one-dispatch-at-a-time; bulk_gate_ serializes concurrent
    // runIndexed() callers so they cannot clobber it (it is held for
    // the caller's whole dispatch, so it must never be taken while
    // holding mutex_).
    std::mutex bulk_gate_;
    void (*bulk_task_)(void *, int) = nullptr;
    void *bulk_ctx_ = nullptr;
    int bulk_count_ = 0;
    int bulk_next_ = 0;
    int bulk_done_ = 0;
};

} // namespace dadu::app

#endif // DADU_APP_THREAD_POOL_H
