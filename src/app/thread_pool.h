/**
 * @file
 * Minimal fixed-size thread pool for the multi-threaded CPU baseline
 * (the paper's Fig. 2b experiment runs the LQ-approximation tasks on
 * 1-12 threads).
 */

#ifndef DADU_APP_THREAD_POOL_H
#define DADU_APP_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dadu::app {

/** Fixed-size worker pool with a blocking wait-for-all. */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void waitAll();

    int threadCount() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    int in_flight_ = 0;
    bool stop_ = false;
};

} // namespace dadu::app

#endif // DADU_APP_THREAD_POOL_H
