/**
 * @file
 * The end-to-end robot application of Fig. 2 / Section VI-B.
 *
 * A whole-body MPC iteration in the OCS2 style: along a horizon of N
 * sample points, each iteration performs
 *
 *  - an LQ approximation: forward dynamics, its derivatives (∆FD)
 *    and the mass-matrix inverse at every sample point — the
 *    parallelizable dark-blue share of Fig. 2c, dominated by rigid
 *    body dynamics;
 *  - RK4 integration with sensitivity propagation: four *serial*
 *    dynamics stages per sample point (the partially-parallelizable
 *    workload of Fig. 13);
 *  - a backward Riccati-style solver sweep (inherently serial).
 *
 * The workload runs the real reference algorithms, so CPU timings
 * are measured; the offloaded variants submit the dynamics tasks
 * through the unified runtime::DynamicsBackend interface, with the
 * Fig. 13 serial-stage scheduling executed by a
 * runtime::DynamicsServer (one full-width batch per RK4 stage).
 */

#ifndef DADU_APP_MPC_WORKLOAD_H
#define DADU_APP_MPC_WORKLOAD_H

#include <algorithm>
#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "algorithms/batched.h"
#include "ctrl/problem.h"
#include "algorithms/dynamics.h"
#include "algorithms/workspace.h"
#include "model/robot_model.h"
#include "runtime/backends.h"
#include "runtime/server.h"

namespace dadu::app {

using accel::Accelerator;
using model::RobotModel;

/** Workload dimensions. */
struct MpcConfig
{
    int horizon_points = 100; ///< ~1 s horizon at 0.01 s steps
    double dt = 0.01;         ///< integration step
    int threads = 4;          ///< batched-engine parallelism (Fig. 2b)
};

/**
 * Aggregate accounting of the multi-client serving scenario: M MPC
 * clients submitting their dynamics phases concurrently to one
 * DynamicsServer (all times in backend time, so the numbers compose
 * across measured CPU and modeled accelerator backends).
 */
struct MultiClientReport
{
    double makespan_us = 0.0; ///< busiest backend lane over the run
    double busy_us = 0.0;     ///< total backend busy time, all lanes
    std::size_t jobs = 0;     ///< jobs served (2 per client round)
    std::size_t tasks = 0;    ///< individual dynamics requests
    double throughput_mtasks = 0.0; ///< tasks per makespan µs
    // QoS outcome of deadline-tagged rounds (zero when untagged):
    // every tagged job lands in exactly one bucket — completed by
    // its deadline or completed late and reported as a miss.
    std::size_t deadline_met = 0;
    std::size_t deadline_misses = 0;
    std::size_t coalesced_batches = 0; ///< merged submissions served
    std::size_t steals = 0;            ///< items run off their home lane
};

/**
 * Outcome of a closed-loop MPC run (solveClosedLoop /
 * serveClosedLoopClients): real iLQR receding-horizon control, the
 * plant stepped with the reference dynamics, every solver dynamics
 * request served by the runtime.
 */
struct ClosedLoopReport
{
    std::size_t ticks = 0;      ///< control ticks served (all clients)
    double wall_us = 0.0;       ///< wall time of the tick stream
    double ticks_per_s = 0.0;   ///< ticks / wall seconds
    double final_cost = 0.0;    ///< solver horizon cost, last tick (sum)
    double tracking_err = 0.0;  ///< plant state error vs reference (max)
    bool converged = true;      ///< every client's priming solve converged
    // Server-side accounting over the run:
    std::size_t jobs = 0;       ///< dynamics jobs served
    std::size_t tasks = 0;      ///< individual dynamics requests
    double busy_us = 0.0;       ///< backend busy time, all lanes
    std::size_t deadline_met = 0;
    std::size_t deadline_misses = 0;
    std::size_t coalesced_batches = 0;
    std::size_t steals = 0;
    // Fault-tolerance outcome of the run (zero on a healthy server):
    std::size_t degraded_ticks = 0; ///< ticks served from the stale plan
    std::size_t rejected_jobs = 0;  ///< jobs shed by admission control
    std::size_t failed_jobs = 0;    ///< jobs lost to dead lanes
    std::size_t lane_deaths = 0;    ///< lanes quarantined during the run
    std::size_t transient_faults = 0; ///< faulted submits (incl. retried)
    std::size_t retries = 0;          ///< resubmissions that recovered work
    // Column-gating engagement of the solver(s) over the run (all
    // zero when gating is off): dense ∆FD refreshes, gated ∆iFD
    // refreshes, refreshes skipped outright (nothing drifted past
    // tolerance), and the mean live-column density of the gated ones.
    long long dense_refreshes = 0;
    long long gated_refreshes = 0;
    long long skipped_refreshes = 0;
    double mean_live_density = 0.0;

    /** Fraction of tagged jobs that completed by their deadline
     *  (1.0 when nothing was tagged). */
    double
    deadlineHitRate() const
    {
        const std::size_t tagged = deadline_met + deadline_misses;
        return tagged == 0
                   ? 1.0
                   : static_cast<double>(deadline_met) / tagged;
    }
};

/** Wall-clock shares of one MPC iteration (Fig. 2c). */
struct MpcBreakdown
{
    double lq_us = 0.0;       ///< LQ approximation (parallelizable)
    double rollout_us = 0.0;  ///< RK4 rollout with sensitivities
    double solver_us = 0.0;   ///< serial Riccati sweep
    double total() const { return lq_us + rollout_us + solver_us; }

    /** Fraction of the iteration spent in derivatives of dynamics. */
    double
    derivativeShare() const
    {
        const double t = total();
        return t > 0.0 ? lq_us / t : 0.0;
    }
};

/** One MPC iteration driver. */
class MpcWorkload
{
  public:
    MpcWorkload(const RobotModel &robot, MpcConfig cfg = {});

    /**
     * Run one LQ-approximation + rollout iteration single-threaded on
     * the host and return the measured per-phase times. Dynamics
     * evaluations reuse the workload's workspace, so steady-state
     * iterations perform no heap allocation in the dynamics phases.
     */
    MpcBreakdown measureCpu();

    /**
     * Like measureCpu(), but the LQ-approximation phase — ∆FD at
     * every horizon point, the dominant share of Fig. 2c — is
     * submitted through the workload's CpuBatchedBackend (the
     * runtime interface over the BatchedDynamics engine across
     * cfg.threads workspaces). The rollout (serial per point) and
     * Riccati sweep are unchanged, so lq_us is the directly measured
     * batched wall-clock time.
     */
    MpcBreakdown measureCpuBatched();

    /**
     * Modeled iteration time with @p threads CPU threads: measured
     * single-thread phases, parallel phases scaled by the saturating
     * curve of perf::threadScaling (Fig. 2b).
     */
    double cpuIterationUs(int threads);

    /**
     * The thread-scaling model of cpuIterationUs() applied to an
     * already-measured breakdown — lets callers compare thread
     * counts from ONE measurement instead of re-measuring per count
     * (wall-clock jitter between measurements would otherwise leak
     * into the comparison).
     */
    static double cpuIterationUsFrom(const MpcBreakdown &b, int threads);

    /**
     * Per-phase times with the dynamics tasks served by @p backend
     * through a DynamicsServer: lq is one ∆FD batch over the
     * horizon, rollout is the Fig. 13 serial-stage job (four chained
     * full-width FD batches with the RK4 half-step advance between
     * stages), and solver is the measured CPU sweep. lq/rollout are
     * in backend time (measured for CPU backends, modeled
     * microseconds for the accelerator paths); the stage outputs are
     * really computed, so every backend returns the same rollout
     * trajectory.
     */
    MpcBreakdown backendBreakdown(runtime::DynamicsBackend &backend);

    /**
     * Iteration time with the dynamics on @p backend. Offloaded
     * backends overlap the CPU-kept solver sweep except for the
     * data dependency at the end of the iteration; host backends
     * share the CPU with the solver, so their phases add up.
     */
    double backendIterationUs(runtime::DynamicsBackend &backend);

    /**
     * Combine an already-computed backendBreakdown() into the
     * iteration time under backendIterationUs()'s overlap rule,
     * without re-running the workload.
     */
    static double
    iterationUsFrom(const MpcBreakdown &b, bool offloaded)
    {
        if (offloaded)
            return std::max(b.lq_us + b.rollout_us, b.solver_us);
        return b.total();
    }

    /**
     * Iteration time with the dynamics tasks offloaded to @p accel:
     * FD + ∆FD batches execute on the cycle-accurate simulator
     * through an AcceleratorBackend (Fig. 13 interleaving of the
     * four serial RK4 stages), while the CPU keeps the solver sweep.
     */
    double acceleratedIterationUs(Accelerator &accel);

    /**
     * Heavy-traffic scenario: @p clients MPC clients, each on its
     * own thread, submit @p rounds iterations of their dynamics
     * phases to @p server concurrently — the LQ ∆FD batch sharded
     * across every registered backend, the Fig. 13 rollout as a
     * serial-stage job on the least-loaded lane — and block on their
     * own jobs, exactly as latency-critical MPC loops would. Client
     * c perturbs the horizon samples by a per-client offset so the
     * traffic is not identical. Starts the server's workers if not
     * already running (and stops them again in that case); the
     * server's accounting interval is drained into the report.
     *
     * @p deadline_slack > 0 turns the clients into deadline-tagged
     * (EDF-schedulable) traffic: from its second round on, each
     * client predicts its jobs' makespan with the closed-form
     * app::predictedAdmissionUs — per-task time calibrated from its
     * own previous round's BatchStats, queued work read from the
     * server's lane load — and tags them with
     * deadline = now + slack x prediction. The report's deadline
     * buckets then account every tagged job.
     */
    MultiClientReport serveMultiClient(runtime::DynamicsServer &server,
                                       int clients, int rounds = 1,
                                       double deadline_slack = 0.0);

    /**
     * Closed-loop MPC with a REAL trajectory optimizer — the path
     * that supersedes the synthetic Riccati sweep of measureCpu()'s
     * solver phase for the bench_mpc_solve workload. One
     * ctrl::MpcSession (reaching scenario for this robot) runs
     * @p ticks receding-horizon control ticks against a plant
     * stepped with the reference dynamics; every solver dynamics
     * request is served by @p backend through a synchronous
     * DynamicsServer. @p options tunes the session's solver — the
     * column-sparsity gating knobs in particular, so the gated and
     * dense closed loops can be compared on one workload.
     */
    ClosedLoopReport solveClosedLoop(runtime::DynamicsBackend &backend,
                                     int ticks,
                                     ctrl::IlqrOptions options = {});

    /**
     * Heavy-traffic closed-loop scenario: @p clients MPC sessions on
     * their own threads (scenario mix: reaching / gait /
     * disturbance-recovery, phase-shifted per client) tick
     * concurrently against @p server for @p ticks control steps
     * each. With @p deadline_slack > 0 every dynamics job is
     * deadline-tagged (EDF-schedulable) via the session's
     * predictedAdmissionUs admission path, and the report's deadline
     * buckets account the outcome. Starts the server's workers when
     * not already running (stopping them again in that case); the
     * server's accounting interval is drained into the report.
     */
    ClosedLoopReport serveClosedLoopClients(
        runtime::DynamicsServer &server, int clients, int ticks,
        double deadline_slack = 0.0);

    const MpcConfig &config() const { return cfg_; }

    /** The CPU runtime backend driving the LQ-approximation phase. */
    runtime::CpuBatchedBackend &cpuBackend() { return cpu_backend_; }

    /** The batched engine behind cpuBackend(). */
    algo::BatchedDynamics &engine() { return cpu_backend_.engine(); }

  private:
    /**
     * Per-job context of the RK4 stage-boundary advance: every
     * concurrently-served rollout needs its own integration scratch
     * (concurrent serial-stage jobs run their advances on different
     * server worker threads).
     */
    struct RolloutCtx
    {
        const RobotModel *robot = nullptr;
        double half_dt = 0.0;
        linalg::VectorX step, q_next;
    };

    /** RK4 rollout shared by the measured variants (workspace-based). */
    double measureRolloutUs();

    /**
     * Serial SYNTHETIC Riccati-style sweep (nv x nv factorization
     * work shaped like a solver, solving nothing). Kept as the
     * solver-phase stand-in of the Fig. 2c breakdown benches;
     * deprecated for bench_mpc_solve, which runs the real iLQR
     * backward pass via solveClosedLoop() instead.
     */
    double measureSolverUs();

    /** Stage-boundary RK4 half-step advance (DynamicsServer hook);
     *  @p ctx is the job's RolloutCtx. */
    static void advanceRollout(void *ctx, int next_stage,
                               const runtime::DynamicsResult *results,
                               runtime::DynamicsRequest *requests,
                               std::size_t points);

    const RobotModel &robot_;
    MpcConfig cfg_;
    std::vector<linalg::VectorX> qs_, qds_, taus_;
    algo::DynamicsWorkspace ws_;
    runtime::CpuBatchedBackend cpu_backend_;
    algo::FdDerivatives fd_tmp_;
    linalg::VectorX qdd_tmp_, step_tmp_, q_cur_, q_next_, qd_cur_;
    // Runtime staging (grow-only, reused across backend iterations).
    std::vector<runtime::DynamicsRequest> lq_req_, ro_req_;
    std::vector<runtime::DynamicsResult> lq_res_, ro_res_;
    RolloutCtx ro_ctx_; ///< backendBreakdown's (single) rollout job
};

} // namespace dadu::app

#endif // DADU_APP_MPC_WORKLOAD_H
