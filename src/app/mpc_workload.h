/**
 * @file
 * The end-to-end robot application of Fig. 2 / Section VI-B.
 *
 * A whole-body MPC iteration in the OCS2 style: along a horizon of N
 * sample points, each iteration performs
 *
 *  - an LQ approximation: forward dynamics, its derivatives (∆FD)
 *    and the mass-matrix inverse at every sample point — the
 *    parallelizable dark-blue share of Fig. 2c, dominated by rigid
 *    body dynamics;
 *  - RK4 integration with sensitivity propagation: four *serial*
 *    dynamics stages per sample point (the partially-parallelizable
 *    workload of Fig. 13);
 *  - a backward Riccati-style solver sweep (inherently serial).
 *
 * The workload runs the real reference algorithms, so CPU timings
 * are measured; the accelerated variant offloads the dynamics tasks
 * to the Dadu-RBD model with the Fig. 13 scheduling policy.
 */

#ifndef DADU_APP_MPC_WORKLOAD_H
#define DADU_APP_MPC_WORKLOAD_H

#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "algorithms/batched.h"
#include "algorithms/dynamics.h"
#include "algorithms/workspace.h"
#include "model/robot_model.h"

namespace dadu::app {

using accel::Accelerator;
using model::RobotModel;

/** Workload dimensions. */
struct MpcConfig
{
    int horizon_points = 100; ///< ~1 s horizon at 0.01 s steps
    double dt = 0.01;         ///< integration step
    int threads = 4;          ///< batched-engine parallelism (Fig. 2b)
};

/** Wall-clock shares of one MPC iteration (Fig. 2c). */
struct MpcBreakdown
{
    double lq_us = 0.0;       ///< LQ approximation (parallelizable)
    double rollout_us = 0.0;  ///< RK4 rollout with sensitivities
    double solver_us = 0.0;   ///< serial Riccati sweep
    double total() const { return lq_us + rollout_us + solver_us; }

    /** Fraction of the iteration spent in derivatives of dynamics. */
    double
    derivativeShare() const
    {
        return lq_us / total();
    }
};

/** One MPC iteration driver. */
class MpcWorkload
{
  public:
    MpcWorkload(const RobotModel &robot, MpcConfig cfg = {});

    /**
     * Run one LQ-approximation + rollout iteration single-threaded on
     * the host and return the measured per-phase times. Dynamics
     * evaluations reuse the workload's workspace, so steady-state
     * iterations perform no heap allocation in the dynamics phases.
     */
    MpcBreakdown measureCpu();

    /**
     * Like measureCpu(), but the LQ-approximation phase — ∆FD at
     * every horizon point, the dominant share of Fig. 2c — runs
     * through the BatchedDynamics engine across cfg.threads
     * workspaces. The rollout (serial per point) and Riccati sweep
     * are unchanged, so lq_us is the directly measured batched
     * wall-clock time.
     */
    MpcBreakdown measureCpuBatched();

    /**
     * Modeled iteration time with @p threads CPU threads: measured
     * single-thread phases, parallel phases scaled by the saturating
     * curve of perf::threadScaling (Fig. 2b).
     */
    double cpuIterationUs(int threads);

    /**
     * Iteration time with the dynamics tasks offloaded to @p accel
     * (FD + ∆FD batches through the pipelines, Fig. 13 interleaving
     * of the four serial RK4 stages), while the CPU keeps the solver
     * sweep.
     */
    double acceleratedIterationUs(Accelerator &accel);

    const MpcConfig &config() const { return cfg_; }

    /** The batched engine driving the LQ-approximation phase. */
    algo::BatchedDynamics &engine() { return engine_; }

  private:
    /** RK4 rollout shared by the measured variants (workspace-based). */
    double measureRolloutUs();

    /** Serial Riccati-style solver sweep. */
    double measureSolverUs();

    const RobotModel &robot_;
    MpcConfig cfg_;
    std::vector<linalg::VectorX> qs_, qds_, taus_;
    algo::DynamicsWorkspace ws_;
    algo::BatchedDynamics engine_;
    algo::FdDerivatives fd_tmp_;
    linalg::VectorX qdd_tmp_, step_tmp_, q_cur_, q_next_, qd_cur_;
};

} // namespace dadu::app

#endif // DADU_APP_MPC_WORKLOAD_H
