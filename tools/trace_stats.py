#!/usr/bin/env python3
"""Summarize a dadu Chrome-trace file (trace_*.json).

Reads the trace-event JSON produced by writeChromeTrace / the live
TraceStreamer and prints:

  - per-track (lane / control / client ring) utilization: summed
    ExecBegin..ExecEnd span time over the track's active window;
  - scheduler action counts: coalesce, steal, retry, requeue, fault,
    lane-death instants per track;
  - the top-10 slowest completed jobs by end-to-end latency (the
    Completed instant carries e2e microseconds in args.b).

Usage: tools/trace_stats.py trace_sched_qos.json [--top N]

Exits non-zero on a structurally invalid trace, so CI can use it as a
validator as well as a reporter.
"""

import argparse
import json
import sys
from collections import defaultdict


def load(path):
    with open(path) as f:
        t = json.load(f)
    if "traceEvents" not in t or not isinstance(t["traceEvents"], list):
        raise SystemExit(f"{path}: no traceEvents array")
    if "droppedEvents" not in t:
        raise SystemExit(f"{path}: missing droppedEvents footer")
    return t


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome-trace JSON file")
    ap.add_argument("--top", type=int, default=10,
                    help="slowest-job count to print (default 10)")
    args = ap.parse_args()

    t = load(args.trace)
    events = t["traceEvents"]

    names = {}          # tid -> track name
    spans = defaultdict(float)    # tid -> summed B..E duration (us)
    open_begin = {}     # tid -> stack of B timestamps
    window = {}         # tid -> [min ts, max ts]
    actions = defaultdict(lambda: defaultdict(int))  # tid -> name -> n
    completed = []      # (e2e_us, job, ts)
    counted = {"coalesced_into", "stolen_from", "retry", "requeue",
               "fault", "lane_death"}

    for e in events:
        ph = e.get("ph")
        tid = e.get("tid")
        if ph == "M":
            if e.get("name") == "thread_name":
                names[tid] = e["args"]["name"]
            continue
        ts = e.get("ts")
        if ts is None:
            continue
        lo, hi = window.get(tid, (ts, ts))
        window[tid] = (min(lo, ts), max(hi, ts))
        if ph == "B":
            # Spans nest (tick > ilqr_iter); only the outermost one
            # counts toward busy time or utilization double-counts.
            open_begin.setdefault(tid, []).append(ts)
        elif ph == "E":
            stack = open_begin.get(tid)
            if stack:
                start = stack.pop()
                if not stack:
                    spans[tid] += ts - start
        elif ph == "i":
            name = e.get("name", "")
            if name in counted:
                actions[tid][name] += 1
            elif name == "completed":
                a = e.get("args", {})
                completed.append((float(a.get("b", 0.0)),
                                  a.get("job", -1), ts))

    print(f"{args.trace}: {len(events)} events, "
          f"{t['droppedEvents']} dropped")

    print(f"\n{'track':<12} {'window(ms)':>10} "
          f"{'busy(ms)':>9} {'util':>6}  actions")
    for tid in sorted(window):
        lo, hi = window[tid]
        span = hi - lo
        busy = spans.get(tid, 0.0)
        util = busy / span if span > 0 else 0.0
        acts = actions.get(tid, {})
        act_str = " ".join(f"{k}={v}"
                           for k, v in sorted(acts.items())) or "-"
        print(f"{names.get(tid, tid):<12} {span / 1e3:>10.2f} "
              f"{busy / 1e3:>9.2f} {util:>5.1%}  {act_str}")

    total_actions = defaultdict(int)
    for per in actions.values():
        for k, v in per.items():
            total_actions[k] += v
    if total_actions:
        print("\ntotals: " + "  ".join(
            f"{k}={v}" for k, v in sorted(total_actions.items())))

    completed.sort(reverse=True)
    if completed:
        print(f"\ntop {min(args.top, len(completed))} slowest jobs "
              f"(of {len(completed)} completed):")
        print(f"{'job':>8} {'e2e(us)':>12} {'completed at(ms)':>17}")
        for e2e, job, ts in completed[:args.top]:
            print(f"{job:>8} {e2e:>12.1f} {ts / 1e3:>17.2f}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
