#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against the committed
ones, on machine-independent headline keys with per-key tolerances.

The committed BENCH files record the perf trajectory of the repo; a
fresh CI run on different hardware cannot reproduce absolute µs
numbers, but the RATIO keys (overhead factors, speedups, hit rates,
convergence flags) are hardware-normalized and must stay in band.

Checks, per compared file:

  1. key-set equality — the fresh file must contain exactly the
     committed keys (a bench that silently dropped or renamed a
     headline metric fails here, reminding the author to regenerate
     the committed file);
  2. spec'd headline keys — each (key, mode, bound) row below:
       exact     fresh == committed (bit-identical print)
       rel R     |fresh - committed| <= R * |committed|
       max B     fresh <= B  (absolute ceiling, e.g. overhead ratios)
       min B     fresh >= B  (absolute floor, e.g. convergence flags)

Usage:  tools/bench_compare.py --fresh build --committed . \
            BENCH_sched.json [BENCH_overload.json ...]

Exit status 0 = all in band, 1 = any violation (listed on stdout).
"""

import argparse
import json
import os
import re
import sys

# Keys whose PRESENCE is machine-dependent: the histogram dumps emit
# one key per NONZERO bucket (…_b<index>), and which buckets fill
# depends on the runner's absolute latencies. Excluded from the
# key-set equality check.
DYNAMIC_KEY = re.compile(r"_b\d+$")

# (key, mode, bound) rows per file. Keys here are the headline,
# machine-independent metrics; bounds are wide enough for CI-runner
# noise but tight enough to catch real regressions.
SPEC = {
    "BENCH_sched.json": [
        ("schema_version", "exact", None),
        ("hist_buckets", "exact", None),
        ("hist_sub_buckets", "exact", None),
        ("hist_octaves", "exact", None),
        # Tracing+metrics must stay near-free; streaming adds the
        # aggregator + writer thread. 1.15 absorbs runner noise on
        # top of the committed ≤1.05 acceptance bound.
        ("obs_overhead_ratio", "max", 1.15),
        ("obs_stream_overhead_ratio", "max", 1.15),
        # EDF/QoS throughput cost vs FIFO stays within 30% of the
        # committed factor.
        ("throughput_ratio_edf", "rel", 0.30),
        ("throughput_ratio_qos", "rel", 0.30),
    ],
    "BENCH_overload.json": [
        ("schema_version", "exact", None),
        # Admission control must keep critical deadlines under 2x
        # overload (the headline fault-tolerance claim), where FIFO
        # visibly degrades.
        ("crit_hit_qos_2x", "min", 0.90),
        ("crit_hit_fifo_2x", "max", 0.90),
    ],
    "BENCH_mpc.json": [
        ("schema_version", "exact", None),
        # Every robot x scenario solve must converge, always.
        ("*_converged", "min", 1.0),
        ("serve_deadline_hit_rate", "min", 0.50),
    ],
}


def check_file(name, fresh_dir, committed_dir, failures):
    fresh_path = os.path.join(fresh_dir, name)
    committed_path = os.path.join(committed_dir, name)
    for p in (fresh_path, committed_path):
        if not os.path.exists(p):
            failures.append(f"{name}: missing file {p}")
            return
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(committed_path) as f:
        committed = json.load(f)

    fresh_keys = {k for k in fresh if not DYNAMIC_KEY.search(k)}
    committed_keys = {k for k in committed if not DYNAMIC_KEY.search(k)}
    only_fresh = sorted(fresh_keys - committed_keys)
    only_committed = sorted(committed_keys - fresh_keys)
    if only_fresh:
        failures.append(
            f"{name}: keys not in committed file (regenerate it): "
            + ", ".join(only_fresh[:10]))
    if only_committed:
        failures.append(
            f"{name}: committed keys missing from fresh run: "
            + ", ".join(only_committed[:10]))

    checked = 0
    for key, mode, bound in SPEC.get(name, []):
        if key.startswith("*"):
            keys = [k for k in committed if k.endswith(key[1:])]
        else:
            keys = [key] if key in committed else []
        if not keys:
            failures.append(f"{name}: spec key {key} not present")
            continue
        for k in keys:
            if k not in fresh:
                continue  # already reported by the key-set check
            fv, cv = fresh[k], committed[k]
            ok = True
            if mode == "exact":
                ok = fv == cv
                detail = f"fresh {fv} != committed {cv}"
            elif mode == "rel":
                ok = abs(fv - cv) <= bound * abs(cv)
                detail = (f"fresh {fv} vs committed {cv} "
                          f"(tol ±{bound:.0%})")
            elif mode == "max":
                ok = fv <= bound
                detail = f"fresh {fv} > ceiling {bound}"
            elif mode == "min":
                ok = fv >= bound
                detail = f"fresh {fv} < floor {bound}"
            else:
                raise ValueError(f"bad mode {mode}")
            checked += 1
            if not ok:
                failures.append(f"{name}: {k} [{mode}] {detail}")
    print(f"{name}: {len(committed)} committed keys, "
          f"{checked} headline checks")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True,
                    help="directory with freshly produced BENCH files")
    ap.add_argument("--committed", required=True,
                    help="directory with committed BENCH files")
    ap.add_argument("files", nargs="+", help="BENCH_*.json names")
    args = ap.parse_args()

    failures = []
    for name in args.files:
        check_file(name, args.fresh, args.committed, failures)
    if failures:
        print("\nFAIL:")
        for f in failures:
            print("  " + f)
        return 1
    print("\nall headline metrics in band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
