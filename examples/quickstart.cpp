/**
 * @file
 * Quickstart: build a robot model, run every dynamics function on
 * the reference library, then run the same functions through the
 * Dadu-RBD accelerator model and compare results and performance.
 */

#include <cstdio>
#include <random>

#include "accel/accelerator.h"
#include "algorithms/aba.h"
#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/rnea.h"
#include "model/builders.h"

int
main()
{
    using namespace dadu;

    // 1. A robot model: the 7-DOF KUKA LBR iiwa.
    const model::RobotModel robot = model::makeIiwa();
    std::printf("robot: %s, NB=%d links, N=%d DOF\n",
                robot.name().c_str(), robot.nb(), robot.nv());

    // 2. A random state (q, q̇) and a torque vector.
    std::mt19937 rng(42);
    const linalg::VectorX q = robot.randomConfiguration(rng);
    const linalg::VectorX qd = robot.randomVelocity(rng);
    const linalg::VectorX tau = robot.randomVelocity(rng);

    // 3. Reference library: forward dynamics, then inverse dynamics
    //    to check the round trip (Eq. 2 of the paper).
    const linalg::VectorX qdd = algo::aba(robot, q, qd, tau);
    const linalg::VectorX tau_back = algo::rnea(robot, q, qd, qdd).tau;
    std::printf("FD/ID round trip error: %.2e\n",
                (tau_back - tau).maxAbs());

    // 4. Configure the accelerator for this robot (the paper's
    //    one-time per-robot configuration) and inspect the SAP plan.
    accel::Accelerator dadu(robot);
    std::printf("SAP plan: %s\n", dadu.plan().summary().c_str());
    std::printf("resources: %.0f%% DSP of the XVCU9P\n",
                dadu.resources().dsp_pct);

    // 5. Run a batch of forward-dynamics tasks through the cycle
    //    simulator and compare against the reference.
    std::vector<accel::TaskInput> batch(8);
    for (auto &t : batch) {
        t.q = robot.randomConfiguration(rng);
        t.qd = robot.randomVelocity(rng);
        t.qdd_or_tau = robot.randomVelocity(rng);
    }
    accel::BatchStats stats;
    const auto out = dadu.run(accel::FunctionType::FD, batch, &stats);
    double worst = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto ref = algo::forwardDynamics(
            robot, batch[i].q, batch[i].qd, batch[i].qdd_or_tau);
        worst = std::max(worst, (out[i].qdd - ref).maxAbs());
    }
    std::printf("accelerator FD batch: %llu cycles, %.2f Mtasks/s, "
                "max error vs reference %.2e (fixed-point datapath)\n",
                static_cast<unsigned long long>(stats.cycles),
                stats.throughput_mtasks, worst);
    return 0;
}
