/**
 * @file
 * Trajectory optimization with analytical dynamics derivatives: a
 * gradient-descent shooting method on the iiwa arm, the TO use case
 * the paper's Table I derivatives serve. Demonstrates the ∆FD API
 * and batching derivative evaluations through the accelerator.
 */

#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "accel/accelerator.h"
#include "algorithms/aba.h"
#include "model/builders.h"

int
main()
{
    using namespace dadu;
    using linalg::MatrixX;
    using linalg::VectorX;

    const model::RobotModel robot = model::makeIiwa();
    const int nv = robot.nv();
    const int horizon = 32;
    const double dt = 0.005;

    // Braking maneuver: the arm starts with a random joint velocity
    // and the optimizer must find torques that bring it to rest at
    // the end of the horizon (a well-conditioned shooting problem).
    std::mt19937 rng(3);
    const VectorX q0 = robot.neutralConfiguration();
    const VectorX qd0 = robot.randomVelocity(rng);
    std::vector<VectorX> taus(horizon, VectorX(nv));

    accel::Accelerator dadu(robot);
    std::printf("robot: %s — shooting TO over %d steps, derivatives "
                "batched on the accelerator\n",
                robot.name().c_str(), horizon);

    double prev_err = 1e30;
    for (int iter = 0; iter < 8; ++iter) {
        // Roll out the current torque trajectory and collect the
        // derivative tasks (the TO inner loop of Section I).
        std::vector<accel::TaskInput> batch(horizon);
        VectorX qi = q0;
        VectorX qdi = qd0;
        for (int k = 0; k < horizon; ++k) {
            batch[k].q = qi;
            batch[k].qd = qdi;
            batch[k].qdd_or_tau = taus[k];
            const VectorX qdd = algo::aba(robot, qi, qdi, taus[k]);
            qi = robot.integrate(qi, qdi * dt);
            qdi += qdd * dt;
        }
        accel::BatchStats stats;
        const auto derivs =
            dadu.run(accel::FunctionType::DeltaFD, batch, &stats);
        // The mass matrix at the start of the horizon, also from the
        // accelerator (dataflow-switched M function, same hardware).
        const auto mrun = dadu.run(accel::FunctionType::M,
                                   {batch.front()});
        const MatrixX &mass = mrun[0].m;

        // Terminal velocity error drives a steepest-descent torque
        // update through ∂q̈/∂τ = M⁻¹ (∆FD's byproduct).
        const VectorX terminal_err = qdi;
        const double err_norm = terminal_err.norm();
        std::printf("iter %d: terminal error %7.4f  "
                    "(derivative batch at %.2f Mtasks/s, %llu cycles)\n",
                    iter, err_norm, stats.throughput_mtasks,
                    static_cast<unsigned long long>(stats.cycles));
        if (!std::isfinite(err_norm) || err_norm > prev_err) {
            std::printf("stopping (error no longer decreasing)\n");
            break;
        }
        prev_err = err_norm;

        // Conservative steepest-descent step, preconditioned by a
        // normalized M⁻¹ from the accelerator's ∆FD output; a full
        // iLQR backward pass is out of scope for an example.
        // A constant torque τ over the horizon changes the terminal
        // velocity by ≈ T·M⁻¹τ (derivs[k].minv confirms M⁻¹ stays
        // near-constant on this short horizon), so τ = -M·err/T
        // cancels the terminal velocity; apply half for stability.
        const VectorX dtau =
            mass * terminal_err * (-0.5 / (horizon * dt));
        for (int k = 0; k < horizon; ++k)
            taus[k] += dtau;
    }
    std::printf("done: torques refined with accelerator-supplied "
                "derivatives\n");
    return 0;
}
