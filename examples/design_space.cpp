/**
 * @file
 * Design-space exploration: configure Dadu-RBD for a custom robot
 * and inspect how the SAP compiler, the DSP-budget auto-fit and the
 * TDM/rotation options shape throughput, latency and resources —
 * the "general rigid body dynamics accelerator design framework"
 * use of the paper.
 */

#include <cstdio>

#include "accel/accelerator.h"
#include "model/builders.h"
#include "perf/power_model.h"
#include "perf/resource_model.h"

int
main()
{
    using namespace dadu;

    // A custom robot: a hexapod with a camera arm — not one of the
    // paper's robots, demonstrating the generic model builder.
    model::RobotModel robot("hexapod_arm");
    const int body = robot.addLink(
        "body", -1, model::JointType::Floating,
        spatial::SpatialTransform::identity(),
        spatial::SpatialInertia::fromComInertia(
            12.0, linalg::Vec3::zero(),
            linalg::Mat3::identity() * 0.4));
    for (int leg = 0; leg < 6; ++leg) {
        const double x = 0.25 - 0.25 * (leg % 3);
        const double y = (leg < 3) ? 0.15 : -0.15;
        int id = robot.addLink(
            "leg" + std::to_string(leg) + "_coxa", body,
            model::JointType::RevoluteX,
            spatial::SpatialTransform::translation(
                linalg::Vec3{x, y, 0}),
            spatial::SpatialInertia::fromComInertia(
                0.3, linalg::Vec3{0, 0, -0.05},
                linalg::Mat3::identity() * 0.002));
        id = robot.addLink(
            "leg" + std::to_string(leg) + "_femur", id,
            model::JointType::RevoluteY,
            spatial::SpatialTransform::translation(
                linalg::Vec3{0, 0, -0.1}),
            spatial::SpatialInertia::fromComInertia(
                0.4, linalg::Vec3{0, 0, -0.08},
                linalg::Mat3::identity() * 0.003));
        robot.addLink(
            "leg" + std::to_string(leg) + "_tibia", id,
            model::JointType::RevoluteY,
            spatial::SpatialTransform::translation(
                linalg::Vec3{0, 0, -0.16}),
            spatial::SpatialInertia::fromComInertia(
                0.2, linalg::Vec3{0, 0, -0.09},
                linalg::Mat3::identity() * 0.002));
    }
    int cam = robot.addLink("cam_yaw", body, model::JointType::RevoluteZ,
                            spatial::SpatialTransform::translation(
                                linalg::Vec3{0.3, 0, 0.1}),
                            spatial::SpatialInertia::fromComInertia(
                                0.5, linalg::Vec3{0, 0, 0.05},
                                linalg::Mat3::identity() * 0.004));
    robot.addLink("cam_pitch", cam, model::JointType::RevoluteY,
                  spatial::SpatialTransform::translation(
                      linalg::Vec3{0, 0, 0.1}),
                  spatial::SpatialInertia::fromComInertia(
                      0.3, linalg::Vec3{0, 0, 0.03},
                      linalg::Mat3::identity() * 0.002));

    std::printf("custom robot: NB=%d, N=%d DOF\n", robot.nb(),
                robot.nv());

    // Explore accelerator configurations.
    struct Variant
    {
        const char *name;
        accel::AccelConfig cfg;
    };
    accel::AccelConfig base;
    accel::AccelConfig no_tdm = base;
    no_tdm.sap.merge_symmetric = false;
    accel::AccelConfig tight = base;
    tight.dsp_budget_pct = 30.0; // smaller FPGA region
    accel::AccelConfig float_dp = base;
    float_dp.numeric.fixed_point = false;

    for (const Variant &v :
         {Variant{"default (TDM, 62% DSP)", base},
          Variant{"no TDM merging", no_tdm},
          Variant{"30% DSP budget", tight},
          Variant{"float datapath", float_dp}}) {
        accel::Accelerator dadu(robot, v.cfg);
        const auto id = dadu.analytic(accel::FunctionType::ID);
        const auto dfd = dadu.analytic(accel::FunctionType::DeltaFD);
        std::printf("\n[%s]\n  plan: %s\n", v.name,
                    dadu.plan().summary().c_str());
        std::printf("  %s\n",
                    perf::formatResources(dadu.resources()).c_str());
        std::printf("  ID %.1f Mtasks/s (%.2f us), ∆FD %.2f Mtasks/s "
                    "(%.2f us), ∆FD power %.1f W\n",
                    id.throughput_mtasks, id.latency_us,
                    dfd.throughput_mtasks, dfd.latency_us,
                    perf::accelPower(dadu, accel::FunctionType::DeltaFD)
                        .total());
    }
    return 0;
}
