/**
 * @file
 * Whole-body MPC for the quadruped-with-arm (the Fig. 3 robot):
 * runs LQ-approximation iterations with the dynamics offloaded to
 * the accelerator, and reports the achievable control frequency vs
 * a multi-threaded CPU — the end-to-end scenario of Section VI-B.
 */

#include <cstdio>

#include "accel/accelerator.h"
#include "app/mpc_workload.h"
#include "model/builders.h"

int
main()
{
    using namespace dadu;

    const model::RobotModel robot = model::makeQuadrupedArm();
    std::printf("robot: %s (NB=%d, N=%d) — the paper's Fig. 3 "
                "walkthrough configuration\n",
                robot.name().c_str(), robot.nb(), robot.nv());

    app::MpcConfig cfg;
    cfg.horizon_points = 100; // 1 s horizon at 10 ms steps
    app::MpcWorkload mpc(robot, cfg);

    const app::MpcBreakdown b = mpc.measureCpu();
    std::printf("\none MPC iteration on the host CPU:\n");
    std::printf("  LQ approximation: %8.0f us (%.0f%%)\n", b.lq_us,
                100.0 * b.lq_us / b.total());
    std::printf("  RK4 rollout:      %8.0f us (%.0f%%)\n",
                b.rollout_us, 100.0 * b.rollout_us / b.total());
    std::printf("  Riccati solver:   %8.0f us (%.0f%%)\n", b.solver_us,
                100.0 * b.solver_us / b.total());

    accel::Accelerator dadu(robot);
    std::printf("\naccelerator: %s\n", dadu.plan().summary().c_str());

    for (int threads : {1, 4, 12}) {
        const double t = mpc.cpuIterationUs(threads);
        std::printf("CPU x%-2d: %8.0f us/iter -> %6.1f Hz\n", threads,
                    t, 1e6 / t);
    }
    const double ta = mpc.acceleratedIterationUs(dadu);
    std::printf("Dadu:    %8.0f us/iter -> %6.1f Hz\n", ta, 1e6 / ta);
    return 0;
}
