/**
 * @file
 * Whole-body MPC for the quadruped-with-arm (the Fig. 3 robot):
 * runs LQ-approximation iterations with the dynamics submitted
 * through the unified runtime layer, and reports the achievable
 * control frequency per backend — multi-threaded CPU, cycle-accurate
 * accelerator simulation, and the closed-form analytic model — the
 * end-to-end scenario of Section VI-B behind one DynamicsBackend
 * interface.
 */

#include <cstdio>

#include "accel/accelerator.h"
#include "app/mpc_workload.h"
#include "model/builders.h"
#include "runtime/backends.h"

int
main()
{
    using namespace dadu;

    const model::RobotModel robot = model::makeQuadrupedArm();
    std::printf("robot: %s (NB=%d, N=%d) — the paper's Fig. 3 "
                "walkthrough configuration\n",
                robot.name().c_str(), robot.nb(), robot.nv());

    app::MpcConfig cfg;
    cfg.horizon_points = 100; // 1 s horizon at 10 ms steps
    app::MpcWorkload mpc(robot, cfg);

    const app::MpcBreakdown b = mpc.measureCpu();
    std::printf("\none MPC iteration on the host CPU:\n");
    std::printf("  LQ approximation: %8.0f us (%.0f%%)\n", b.lq_us,
                100.0 * b.lq_us / b.total());
    std::printf("  RK4 rollout:      %8.0f us (%.0f%%)\n",
                b.rollout_us, 100.0 * b.rollout_us / b.total());
    std::printf("  Riccati solver:   %8.0f us (%.0f%%)\n", b.solver_us,
                100.0 * b.solver_us / b.total());

    accel::Accelerator dadu(robot);
    std::printf("\naccelerator: %s\n", dadu.plan().summary().c_str());

    for (int threads : {1, 4, 12}) {
        const double t = mpc.cpuIterationUs(threads);
        std::printf("CPU x%-2d: %8.0f us/iter -> %6.1f Hz\n", threads,
                    t, 1e6 / t);
    }

    // Every execution path is a DynamicsBackend; the workload
    // submits the same request batches to each (the accelerated
    // number runs on the cycle-accurate simulator).
    runtime::AcceleratorBackend sim_backend(dadu);
    runtime::AnalyticBackend analytic_backend(dadu);
    runtime::DynamicsBackend *backends[] = {&mpc.cpuBackend(),
                                            &sim_backend,
                                            &analytic_backend};
    std::printf("\nthrough the runtime layer "
                "(workload -> DynamicsServer -> backend):\n");
    for (runtime::DynamicsBackend *backend : backends) {
        const double t = mpc.backendIterationUs(*backend);
        std::printf("%-16s %8.0f us/iter -> %6.1f Hz\n",
                    backend->name(), t, 1e6 / t);
    }

    // Heavy traffic: four MPC clients served concurrently by the
    // asynchronous server over two cloned accelerator instances
    // (the one fitted bitstream programmed onto a second device).
    auto second = sim_backend.clone();
    runtime::DynamicsServer server;
    server.addBackend(sim_backend);
    server.addBackend(*second);
    const app::MultiClientReport r = mpc.serveMultiClient(server, 4);
    std::printf("\n4 MPC clients on 2 accelerator shards "
                "(async DynamicsServer):\n");
    std::printf("  serving makespan: %8.0f us  (%.1f us busy across "
                "lanes)\n",
                r.makespan_us, r.busy_us);
    std::printf("  throughput:       %8.2f Mtasks/s over %zu jobs\n",
                r.throughput_mtasks, r.jobs);
    return 0;
}
